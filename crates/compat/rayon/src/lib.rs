//! Offline stand-in for the `rayon` parallel-iterator API.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of rayon's API the workspace uses — `par_iter`,
//! `par_chunks`, `into_par_iter`, `map`, `enumerate`, `flat_map_iter`
//! and [`current_num_threads`] — with **real** data parallelism: above a
//! small item-count threshold, `collect` splits the items into
//! contiguous chunks, fans them out over `std::thread::scope` workers,
//! and concatenates the per-chunk results in order. Results are
//! therefore order-stable and identical to sequential execution (the
//! workspace's closures are pure per item).
//!
//! Unlike real rayon there is no persistent worker pool: each `collect`
//! spawns scoped threads and joins them, which costs a few tens of
//! microseconds per call. That is negligible for the workspace's uses
//! (per-sample model evaluation, per-chunk subgraph extraction,
//! per-sub-batch training steps), and below [`MIN_PAR_ITEMS`] items the
//! sequential path is used so trivial iterations never pay for threads.

/// Number of threads a real work-stealing pool would use on this host.
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Item count below which `collect` stays sequential: spawning a thread
/// costs far more than mapping one cheap item.
pub const MIN_PAR_ITEMS: usize = 2;

/// Maps `items` with `f` across `threads` scoped workers, preserving
/// item order (contiguous chunks, concatenated in spawn order).
fn parallel_map<T, U, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = threads.min(n).max(1);
    if threads < 2 || n < MIN_PAR_ITEMS {
        return items.into_iter().map(f).collect();
    }
    let per = n.div_ceil(threads);
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let chunk: Vec<T> = it.by_ref().take(per).collect();
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    let mut outs: Vec<Vec<U>> = (0..chunks.len()).map(|_| Vec::new()).collect();
    std::thread::scope(|s| {
        for (chunk, out) in chunks.into_iter().zip(outs.iter_mut()) {
            s.spawn(move || *out = chunk.into_iter().map(f).collect());
        }
    });
    outs.into_iter().flatten().collect()
}

/// Stand-in for a rayon parallel iterator.
///
/// Wraps a standard iterator and forwards every `Iterator` adapter;
/// the inherent [`ParIter::map`], [`ParIter::enumerate`] and
/// [`ParIter::flat_map_iter`] adapters shadow the trait methods and keep
/// the pipeline parallel through the final `collect`.
pub struct ParIter<I>(I);

impl<I: Iterator> Iterator for ParIter<I> {
    type Item = I::Item;

    fn next(&mut self) -> Option<Self::Item> {
        self.0.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<I: Iterator> ParIter<I> {
    /// Parallel `map`: the closure runs on worker threads at `collect`.
    ///
    /// Shadows `Iterator::map`, so rayon-style `Fn + Sync` closures keep
    /// working unchanged while gaining real parallelism.
    pub fn map<U, F>(self, f: F) -> ParMap<I, F>
    where
        F: Fn(I::Item) -> U,
    {
        ParMap { iter: self.0, f }
    }

    /// Index-preserving `enumerate` that stays on the parallel pipeline.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter(self.0.enumerate())
    }

    /// rayon's `flat_map_iter`: parallel per-item map whose results are
    /// serially flattened in item order at `collect`.
    pub fn flat_map_iter<U, F>(self, f: F) -> ParFlatMap<I, F>
    where
        U: IntoIterator,
        F: Fn(I::Item) -> U,
    {
        ParFlatMap { iter: self.0, f }
    }

    /// Collects the (unmapped) items sequentially.
    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }
}

/// Pending parallel `map` (see [`ParIter::map`]).
pub struct ParMap<I, F> {
    iter: I,
    f: F,
}

impl<I: Iterator, F> ParMap<I, F> {
    /// Runs the map across scoped worker threads (above the size
    /// threshold) and collects the results in item order.
    pub fn collect<U, C>(self) -> C
    where
        I::Item: Send,
        U: Send,
        F: Fn(I::Item) -> U + Sync,
        C: FromIterator<U>,
    {
        let items: Vec<I::Item> = self.iter.collect();
        parallel_map(items, current_num_threads(), &self.f)
            .into_iter()
            .collect()
    }
}

/// Pending parallel `flat_map_iter` (see [`ParIter::flat_map_iter`]).
pub struct ParFlatMap<I, F> {
    iter: I,
    f: F,
}

impl<I: Iterator, F> ParFlatMap<I, F> {
    /// Runs the per-item expansion on worker threads, flattening the
    /// per-item outputs in item order.
    pub fn collect<U, C>(self) -> C
    where
        I::Item: Send,
        U: IntoIterator,
        U::Item: Send,
        F: Fn(I::Item) -> U + Sync,
        C: FromIterator<U::Item>,
    {
        let items: Vec<I::Item> = self.iter.collect();
        let f = self.f;
        let expand = |item: I::Item| f(item).into_iter().collect::<Vec<U::Item>>();
        parallel_map(items, current_num_threads(), &expand)
            .into_iter()
            .flatten()
            .collect()
    }
}

/// `par_iter`/`par_chunks` entry points on slices (and via deref, `Vec`).
pub trait ParallelSlice<T> {
    /// Parallel-pipeline iterator over `&T` items.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;

    /// Parallel-pipeline iterator over contiguous `&[T]` chunks.
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter(self.iter())
    }

    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter(self.chunks(chunk_size))
    }
}

/// `into_par_iter` on owned collections.
pub trait IntoParallelIterator {
    /// Item type.
    type Item;
    /// Underlying iterator type.
    type Iter: Iterator<Item = Self::Item>;

    /// Parallel-pipeline iterator over owned items.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<T> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = std::vec::IntoIter<T>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self.into_iter())
    }
}

impl<A, B> IntoParallelIterator for std::ops::Range<A>
where
    std::ops::Range<A>: Iterator<Item = B>,
{
    type Item = B;
    type Iter = std::ops::Range<A>;

    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter(self)
    }
}

/// Glob import mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParFlatMap, ParIter, ParMap, ParallelSlice};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn par_iter_matches_iter() {
        let v = vec![1, 2, 3, 4];
        let doubled: Vec<i32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let indexed: Vec<(usize, i32)> = v.par_iter().enumerate().map(|(i, &x)| (i, x)).collect();
        assert_eq!(indexed[3], (3, 4));
    }

    #[test]
    fn par_chunks_flat_map_iter() {
        let v: Vec<usize> = (0..10).collect();
        let out: Vec<usize> = v
            .par_chunks(3)
            .flat_map_iter(|c| c.iter().map(|&x| x + 1).collect::<Vec<_>>())
            .collect();
        assert_eq!(out, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn thread_count_positive() {
        assert!(super::current_num_threads() >= 1);
    }

    #[test]
    fn forced_threading_is_order_stable() {
        // Even on a single-core host, explicitly fanning out over many
        // workers must preserve item order exactly.
        for threads in [1usize, 2, 3, 7, 16] {
            let items: Vec<usize> = (0..101).collect();
            let out = super::parallel_map(items, threads, &|x| x * 3);
            assert_eq!(
                out,
                (0..101).map(|x| x * 3).collect::<Vec<_>>(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn forced_threading_runs_on_worker_threads() {
        // With ≥2 requested workers and enough items, at least one item
        // must be processed off the caller thread.
        let caller = std::thread::current().id();
        let off_thread = AtomicUsize::new(0);
        let items: Vec<usize> = (0..64).collect();
        let out = super::parallel_map(items, 4, &|x| {
            if std::thread::current().id() != caller {
                off_thread.fetch_add(1, Ordering::Relaxed);
            }
            x + 1
        });
        assert_eq!(out.len(), 64);
        assert_eq!(
            off_thread.load(Ordering::Relaxed),
            64,
            "scoped workers should process every chunk"
        );
    }

    #[test]
    fn below_threshold_stays_sequential() {
        let caller = std::thread::current().id();
        let out = super::parallel_map(vec![7usize], 8, &|x| {
            assert_eq!(std::thread::current().id(), caller);
            x * 2
        });
        assert_eq!(out, vec![14]);
    }

    #[test]
    fn flat_map_iter_with_uneven_expansion_keeps_order() {
        let v: Vec<usize> = (0..20).collect();
        let out: Vec<usize> = v
            .par_iter()
            .flat_map_iter(|&x| std::iter::repeat_n(x, x % 3))
            .collect();
        let expected: Vec<usize> = (0..20)
            .flat_map(|x| std::iter::repeat_n(x, x % 3))
            .collect();
        assert_eq!(out, expected);
    }
}
