//! Offline no-op stand-in for `serde`'s derive macros.
//!
//! The workspace annotates data types with `#[derive(serde::Serialize,
//! serde::Deserialize)]` so they are checkpoint/interchange-ready, but no
//! code in the workspace currently performs (de)serialization through
//! serde's traits. The build environment has no crates.io access, so this
//! proc-macro crate accepts the derive syntax (including inert `#[serde(...)]`
//! helper attributes such as `#[serde(skip)]`) and expands to nothing.
//! Swapping in the real `serde` is a one-line Cargo change.

use proc_macro::TokenStream;

/// No-op `Serialize` derive: accepted and expanded to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive: accepted and expanded to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
