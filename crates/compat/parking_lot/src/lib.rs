//! Offline stand-in for the `parking_lot` crate: a [`Mutex`] with
//! `parking_lot`'s ergonomics (no poisoning, `lock()` returns the guard
//! directly) implemented on top of `std::sync::Mutex`.

use std::fmt;
use std::sync::MutexGuard as StdGuard;

/// Mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`]; releases the lock on drop.
pub type MutexGuard<'a, T> = StdGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_lock() {
            Ok(v) => f.debug_tuple("Mutex").field(&&*v).finish(),
            Err(_) => f.write_str("Mutex(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }
}
