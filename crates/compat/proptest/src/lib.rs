//! Offline mini property-testing harness.
//!
//! Implements the subset of the `proptest` API this workspace uses: the
//! [`proptest!`] macro, range/tuple/`prop_map`/[`collection::vec`]
//! strategies and the `prop_assert*` / `prop_assume!` macros. Each test
//! runs `PROPTEST_CASES` random cases (default 48, overridable via the
//! environment variable of the same name) from a fixed seed, so failures
//! are reproducible; rejected cases (via `prop_assume!`) are retried and
//! do not count toward the case budget.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Deterministic generator handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Creates a generator for one test function.
    pub fn new(seed: u64) -> Self {
        TestRng(StdRng::seed_from_u64(seed))
    }

    /// Uniform value in `[low, high)`.
    pub fn uniform<T: SampleUniform>(&mut self, low: T, high: T) -> T {
        self.0.gen_range(low..high)
    }

    /// Uniform usize in `[low, high]` (inclusive upper bound).
    pub fn len_in(&mut self, low: usize, high: usize) -> usize {
        self.0.gen_range(low..high + 1)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject,
    /// A `prop_assert*` failed with this message.
    Fail(String),
}

/// Result type produced by a generated test-case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

impl<T: SampleUniform> Strategy for std::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.uniform(self.start, self.end)
    }
}

/// Strategy that always yields a clone of one value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Boxed generator closure: one arm of a [`Union`].
pub type ArmFn<T> = Box<dyn Fn(&mut TestRng) -> T>;

/// Uniform choice between several strategies of one value type; built by
/// [`prop_oneof!`].
pub struct Union<T> {
    arms: Vec<ArmFn<T>>,
}

impl<T> Union<T> {
    /// Creates a union over boxed generator closures (one per arm).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<ArmFn<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.uniform(0usize, self.arms.len());
        (self.arms[i])(rng)
    }
}

/// Uniform choice between strategies (unweighted subset of proptest's
/// `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $({
                let s = $arm;
                Box::new(move |rng: &mut $crate::TestRng| $crate::Strategy::generate(&s, rng))
                    as Box<dyn Fn(&mut $crate::TestRng) -> _>
            }),+
        ])
    };
}

macro_rules! tuple_strategy {
    ($($name:ident),*) => {
        impl<$($name: Strategy),*> Strategy for ($($name,)*) {
            type Value = ($($name::Value,)*);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)*) = self;
                ($($name.generate(rng),)*)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);

/// Strategies over collections.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`]: a fixed size or a `Range<usize>`.
    pub trait IntoSizeRange {
        /// `(min, max)` inclusive bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl IntoSizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self)
        }
    }

    impl IntoSizeRange for std::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end.saturating_sub(1))
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max: usize,
    }

    /// Vector of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max) = size.bounds();
        VecStrategy { element, min, max }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.len_in(self.min, self.max);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases each property runs (env `PROPTEST_CASES`, default 48).
pub fn cases() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(48)
}

/// Maximum consecutive `prop_assume!` rejections before giving up.
pub const MAX_REJECTS: usize = 4096;

/// Defines property tests.
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in 0u32..100, b in 0u32..100) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __rng = $crate::TestRng::new(0x5EED_0000u64 ^ stringify!($name).len() as u64);
                let mut __done = 0usize;
                let mut __rejects = 0usize;
                while __done < $crate::cases() {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                    match __outcome {
                        Ok(()) => __done += 1,
                        Err($crate::TestCaseError::Reject) => {
                            __rejects += 1;
                            assert!(
                                __rejects < $crate::MAX_REJECTS,
                                "prop_assume! rejected too many cases in {}",
                                stringify!($name),
                            );
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed at case {}: {}", stringify!($name), __done, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body (fails the case, with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Discards the current case when the precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Glob import mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest, Just, Strategy,
        TestCaseError, TestCaseResult, Union,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 0u8..5, (a, b) in (0u32..10, 0u32..10)) {
            prop_assert!(x < 5);
            prop_assert!(a < 10 && b < 10, "a={a} b={b}");
        }

        #[test]
        fn vec_and_map(
            v in crate::collection::vec(-1.0f32..1.0, 1..20),
            w in crate::collection::vec(0usize..3, 4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert_eq!(w.len(), 4);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn assume_discards(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn macro_generated_tests_run() {
        ranges_and_tuples();
        vec_and_map();
        assume_discards();
    }

    proptest! {
        #[test]
        fn oneof_tuple_patterns_and_just((a, b) in prop_oneof![(0u32..5, 10u32..15), Just((7u32, 20u32))]) {
            prop_assert!(a < 8u32);
            prop_assert!((10u32..21).contains(&b));
        }
    }

    #[test]
    fn oneof_runs() {
        oneof_tuple_patterns_and_just();
    }

    #[test]
    fn prop_map_applies() {
        let s = (0u32..10).prop_map(|x| x * 2);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 2 == 0 && v < 20);
        }
    }
}
