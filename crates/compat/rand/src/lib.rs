//! Offline, API-compatible subset of the `rand` 0.8 crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small slice of the `rand` API the project actually uses:
//! [`rngs::StdRng`] (a deterministic xoshiro256++ generator seeded via
//! [`SeedableRng::seed_from_u64`]), the [`Rng`] extension methods
//! `gen`, `gen_range` and `gen_bool`, and [`seq::SliceRandom::shuffle`].
//!
//! The stream differs from upstream `rand`'s ChaCha-based `StdRng`, but
//! every consumer in this workspace only relies on *determinism per
//! seed*, not on a specific stream.

/// Core pseudo-random generator interface: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Creates a generator with a state derived from `seed` via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for random value generation.
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from the "standard" distribution (`Rng::gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        // 24 random mantissa bits in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Types uniformly samplable over a half-open range (`Rng::gen_range`).
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws one value in `[low, high)`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as i128 - low as i128) as u128;
                // Multiply-shift rejection-free mapping; bias is < 2^-64,
                // negligible for test/data-generation use.
                let r = rng.next_u64() as u128;
                low + ((r * span) >> 64) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        let v = low + u * (high - low);
        if v < high {
            v
        } else {
            // Guard against rounding up to `high` for tiny spans;
            // `next_down` steps toward −∞ regardless of sign.
            high.next_down().max(low)
        }
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + u * (high - low);
        if v < high {
            v
        } else {
            high.next_down().max(low)
        }
    }
}

/// Bundled generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for `rand`'s
    /// `StdRng`; same role, different stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// Returns the raw 256-bit generator state. Extension over
        /// upstream `rand` (offline-shim liberty): checkpoint/resume
        /// needs to persist the generator mid-stream and continue it
        /// bitwise, which upstream only offers via serde features.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator from a state captured by
        /// [`StdRng::state`], continuing the stream exactly.
        ///
        /// An all-zero state is invalid for xoshiro256++ (it is a fixed
        /// point); it is replaced by `seed_from_u64(0)` rather than
        /// producing a generator that only ever emits zeros. A captured
        /// state can never be all-zero, so round-trips are unaffected.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related random operations.
pub mod seq {
    use super::Rng;

    /// Shuffling and sampling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: Rng>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn state_round_trip_continues_the_stream_bitwise() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // The all-zero fixed point is rejected, not propagated.
        let mut z = StdRng::from_state([0; 4]);
        assert_ne!(z.next_u64(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f32 = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n: usize = r.gen_range(0..7usize);
            assert!(n < 7);
            let i: i32 = r.gen_range(-19i32..9);
            assert!((-19..9).contains(&i));
        }
    }

    #[test]
    fn standard_f32_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut sum = 0.0f64;
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.35)).count();
        assert!((3000..4000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }
}
