//! # subgraph-sample
//!
//! Enclosing-subgraph sampling for the CirGPS reproduction (Section III-B
//! of the paper): joining SPF coupling capacitances onto heterogeneous
//! circuit-graph node pairs, structural negative-link generation,
//! `|E_n2n|` balancing, SEAL-style link injection, and parallel h-hop
//! enclosing-subgraph extraction for both link-level and node-level
//! tasks, plus the feature/target normalizers of Section IV-C.
//!
//! ## Example
//!
//! ```
//! use ams_datagen::{generate_with_parasitics, DesignKind, SizePreset};
//! use circuit_graph::netlist_to_graph;
//! use subgraph_sample::{DatasetConfig, LinkDataset};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (design, spf) = generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 0)?;
//! let (graph, map) = netlist_to_graph(&design.netlist);
//! let ds = LinkDataset::build("demo", &graph, &design.netlist, &map, &spf,
//!     &DatasetConfig::default());
//! assert!(!ds.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod dataset;
mod links;
mod normalize;
mod subgraph;
mod sweep;

pub use dataset::{DatasetConfig, LinkDataset, LinkSample, NodeDataset, NodeSample};
pub use links::{generate_negatives, Link, LinkSet};
pub use normalize::{CapNormalizer, XcNormalizer};
pub use subgraph::{SamplerConfig, Subgraph, SubgraphSampler, UNREACHABLE};
pub use sweep::SweepSampler;
