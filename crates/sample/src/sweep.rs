//! Sweep-oriented enclosing-subgraph extraction.
//!
//! A full-chip sweep extracts the enclosing subgraph of *millions* of
//! anchor pairs from one fixed graph. [`SubgraphSampler`] is built for
//! scattered queries: each call allocates a `HashMap` for the local
//! relabeling, a `Vec<Vec<usize>>` adjacency for the two local BFS
//! passes, and a fresh visited vector. [`SweepSampler`] produces
//! **bitwise-identical** [`Subgraph`]s while keeping every piece of
//! scratch alive across pairs:
//!
//! - the visited set and the parent→local index map are versioned stamp
//!   arrays (`O(1)` reset, no hashing),
//! - the local BFS runs over a reusable CSR built from the induced arcs
//!   (no per-call nested `Vec`s),
//! - for the 1-hop link configuration (the paper's default) the
//!   multi-source frontier is expanded inline, skipping the generic
//!   queue entirely,
//! - [`SweepSampler::extract_into`] reuses the output buffers of a
//!   caller-owned [`Subgraph`], so a sweep that deduplicates repeated
//!   neighborhoods allocates nothing at all for the duplicate pairs.
//!
//! Equality with [`SubgraphSampler`] is exact, not approximate: node
//! order, arc order, and clamped BFS distances follow the same
//! deterministic construction (checked field-for-field by the tests
//! below and by the randomized parity property in `tests/proptests.rs`).

use circuit_graph::{BfsScratch, CircuitGraph, XC_DIM};

use crate::subgraph::{SamplerConfig, Subgraph, UNREACHABLE};

/// Versioned parent-id → local-index map with `O(1)` reset.
#[derive(Debug)]
struct StampMap {
    stamp: Vec<u32>,
    idx: Vec<u32>,
    epoch: u32,
}

impl StampMap {
    fn new(n: usize) -> Self {
        StampMap {
            stamp: vec![0; n],
            idx: vec![0; n],
            epoch: 0,
        }
    }

    /// Starts a fresh membership generation.
    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Stamp wrap-around: clear everything once every 2^32 runs.
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 1;
        }
    }

    /// Inserts `v ↦ idx`; returns false if `v` was already present.
    fn insert(&mut self, v: u32, idx: u32) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            self.idx[v as usize] = idx;
            true
        }
    }

    fn get(&self, v: u32) -> Option<u32> {
        (self.stamp[v as usize] == self.epoch).then(|| self.idx[v as usize])
    }
}

/// Allocation-free enclosing-subgraph extractor for link sweeps.
///
/// Produces output bitwise-identical to
/// [`SubgraphSampler::enclosing_subgraph`] with the same
/// [`SamplerConfig`]; see the module docs for what is shared across
/// pairs.
///
/// [`SubgraphSampler::enclosing_subgraph`]:
/// crate::SubgraphSampler::enclosing_subgraph
#[derive(Debug)]
pub struct SweepSampler<'g> {
    graph: &'g CircuitGraph,
    cfg: SamplerConfig,
    seen: StampMap,
    /// Generic multi-hop fallback (hops ≠ 1).
    scratch: BfsScratch,
    // Reusable CSR over the induced directed arcs + BFS queue.
    csr_off: Vec<u32>,
    csr_cur: Vec<u32>,
    csr_adj: Vec<u32>,
    queue: Vec<u32>,
}

impl<'g> SweepSampler<'g> {
    /// Creates a sweep extractor over `graph`.
    pub fn new(graph: &'g CircuitGraph, cfg: SamplerConfig) -> Self {
        SweepSampler {
            graph,
            cfg,
            seen: StampMap::new(graph.num_nodes()),
            scratch: BfsScratch::new(graph.num_nodes()),
            csr_off: Vec::new(),
            csr_cur: Vec::new(),
            csr_adj: Vec::new(),
            queue: Vec::new(),
        }
    }

    /// The graph being swept.
    pub fn graph(&self) -> &CircuitGraph {
        self.graph
    }

    /// The extraction parameters.
    pub fn config(&self) -> SamplerConfig {
        self.cfg
    }

    /// Extracts the enclosing subgraph of link `(m, n)` into a fresh
    /// [`Subgraph`] (convenience wrapper over
    /// [`SweepSampler::extract_into`]).
    ///
    /// # Panics
    ///
    /// Panics if `m == n` or either id is out of range.
    pub fn enclosing_subgraph(&mut self, m: u32, n: u32) -> Subgraph {
        let mut out = Subgraph {
            nodes: Vec::new(),
            node_types: Vec::new(),
            xc: Vec::new(),
            src: Vec::new(),
            dst: Vec::new(),
            edge_types: Vec::new(),
            num_anchors: 2,
            dist_a: Vec::new(),
            dist_b: Vec::new(),
        };
        self.extract_into(m, n, &mut out);
        out
    }

    /// Extracts the enclosing subgraph of link `(m, n)`, reusing the
    /// buffers of `out` (its previous contents are discarded).
    ///
    /// # Panics
    ///
    /// Panics if `m == n` or either id is out of range.
    pub fn extract_into(&mut self, m: u32, n: u32, out: &mut Subgraph) {
        assert_ne!(m, n, "link anchors must differ");
        let total = self.graph.num_nodes();
        assert!(
            (m as usize) < total && (n as usize) < total,
            "link anchor out of range for graph with {total} nodes"
        );

        // Phase 1: visited set in multi-source BFS order (anchors first,
        // then increasing hop distance, neighbors in adjacency order).
        out.nodes.clear();
        if self.cfg.hops == 1 {
            // Inline 1-hop expansion: pop m, pop n, and every depth-1
            // node is beyond `max_hops` — exactly `BfsScratch::run_multi`
            // for sources `[m, n]` without touching a queue.
            self.seen.begin();
            self.seen.insert(m, 0);
            self.seen.insert(n, 1);
            out.nodes.push(m);
            out.nodes.push(n);
            for k in 0..2 {
                let v = out.nodes[k];
                for &w in self.graph.adjacency(v).0 {
                    if self.seen.insert(w, 0) {
                        out.nodes.push(w);
                    }
                }
            }
        } else {
            let visited = self.scratch.run_multi(self.graph, &[m, n], self.cfg.hops);
            out.nodes.extend_from_slice(&visited);
        }
        if out.nodes.len() > self.cfg.max_nodes {
            out.nodes.truncate(self.cfg.max_nodes);
        }

        // Phase 2: parent → local relabeling over the *kept* nodes (a
        // fresh stamp generation, so truncated nodes drop out), then the
        // gathered node features and induced arcs — the same loops as
        // `SubgraphSampler::build`, with the `HashMap` lookups replaced
        // by stamp-array probes.
        let n_local = out.nodes.len();
        self.seen.begin();
        for (i, &v) in out.nodes.iter().enumerate() {
            self.seen.insert(v, i as u32);
        }

        out.node_types.clear();
        out.xc.clear();
        out.xc.reserve(n_local * XC_DIM);
        for &v in &out.nodes {
            out.node_types.push(self.graph.node_type(v).code());
            out.xc.extend_from_slice(self.graph.xc_row(v));
        }

        // SEAL protocol: mask the target link out of its own subgraph
        // (coupling arcs between local 0 and 1), as in `SubgraphSampler`.
        out.src.clear();
        out.dst.clear();
        out.edge_types.clear();
        for (i, &v) in out.nodes.iter().enumerate() {
            let (nbrs, tys) = self.graph.adjacency(v);
            for (&w, &t) in nbrs.iter().zip(tys) {
                if let Some(j) = self.seen.get(w) {
                    let j = j as usize;
                    if (t as usize) >= 2 && ((i == 0 && j == 1) || (i == 1 && j == 0)) {
                        continue;
                    }
                    out.src.push(j);
                    out.dst.push(i);
                    out.edge_types.push(t as usize);
                }
            }
        }
        out.num_anchors = 2;

        // Phase 3: clamped local BFS distances to each anchor over a
        // reusable CSR (distances are traversal-order independent, so
        // this matches `Subgraph::bfs_local` exactly).
        self.build_local_csr(n_local, &out.src, &out.dst);
        Self::local_bfs(
            &mut out.dist_a,
            &mut self.queue,
            &self.csr_off,
            &self.csr_adj,
            n_local,
            0,
        );
        Self::local_bfs(
            &mut out.dist_b,
            &mut self.queue,
            &self.csr_off,
            &self.csr_adj,
            n_local,
            1,
        );
    }

    /// Builds the reusable CSR over the induced directed arcs; the
    /// per-node arc order equals `bfs_local`'s push order (arc-list
    /// order), which the BFS result does not depend on anyway.
    fn build_local_csr(&mut self, n: usize, src: &[usize], dst: &[usize]) {
        self.csr_off.clear();
        self.csr_off.resize(n + 1, 0);
        for &s in src {
            self.csr_off[s + 1] += 1;
        }
        for i in 0..n {
            self.csr_off[i + 1] += self.csr_off[i];
        }
        self.csr_cur.clear();
        self.csr_cur.extend_from_slice(&self.csr_off[..n]);
        self.csr_adj.clear();
        self.csr_adj.resize(src.len(), 0);
        for (&s, &d) in src.iter().zip(dst) {
            let c = &mut self.csr_cur[s];
            self.csr_adj[*c as usize] = d as u32;
            *c += 1;
        }
    }

    /// BFS from a local source, clamped to [`UNREACHABLE`] — the same
    /// frontier cutoff as `Subgraph::bfs_local`.
    fn local_bfs(
        dist: &mut Vec<u32>,
        queue: &mut Vec<u32>,
        csr_off: &[u32],
        csr_adj: &[u32],
        n: usize,
        source: u32,
    ) {
        dist.clear();
        dist.resize(n, UNREACHABLE);
        queue.clear();
        dist[source as usize] = 0;
        queue.push(source);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head] as usize;
            head += 1;
            let dv = dist[v];
            if dv >= UNREACHABLE - 1 {
                continue;
            }
            for &w in &csr_adj[csr_off[v] as usize..csr_off[v + 1] as usize] {
                if dist[w as usize] == UNREACHABLE {
                    dist[w as usize] = dv + 1;
                    queue.push(w);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SubgraphSampler;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};

    fn assert_bitwise_eq(a: &Subgraph, b: &Subgraph, ctx: &str) {
        assert_eq!(a.nodes, b.nodes, "{ctx}: nodes");
        assert_eq!(a.node_types, b.node_types, "{ctx}: node_types");
        let xa: Vec<u32> = a.xc.iter().map(|x| x.to_bits()).collect();
        let xb: Vec<u32> = b.xc.iter().map(|x| x.to_bits()).collect();
        assert_eq!(xa, xb, "{ctx}: xc bits");
        assert_eq!(a.src, b.src, "{ctx}: src");
        assert_eq!(a.dst, b.dst, "{ctx}: dst");
        assert_eq!(a.edge_types, b.edge_types, "{ctx}: edge_types");
        assert_eq!(a.num_anchors, b.num_anchors, "{ctx}: num_anchors");
        assert_eq!(a.dist_a, b.dist_a, "{ctx}: dist_a");
        assert_eq!(a.dist_b, b.dist_b, "{ctx}: dist_b");
    }

    /// Path graph with alternating types and distinguishable XC rows.
    fn path(n: usize) -> CircuitGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n)
            .map(|i| {
                let v = b.add_node(
                    if i % 2 == 0 {
                        NodeType::Net
                    } else {
                        NodeType::Pin
                    },
                    &format!("v{i}"),
                );
                b.set_xc(v, 0, i as f32 + 0.5);
                v
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], EdgeType::NetPin);
        }
        b.build()
    }

    /// Star with a coupling edge between two leaves (exercises the
    /// SEAL target-masking branch).
    fn star_with_coupling(leaves: usize) -> CircuitGraph {
        let mut b = GraphBuilder::new();
        let c = b.add_node(NodeType::Net, "c");
        let ids: Vec<u32> = (0..leaves)
            .map(|i| {
                let v = b.add_node(NodeType::Pin, &format!("l{i}"));
                b.add_edge(c, v, EdgeType::NetPin);
                v
            })
            .collect();
        b.add_edge(ids[0], ids[1], EdgeType::CouplingPinPin);
        b.build()
    }

    #[test]
    fn matches_subgraph_sampler_on_paths() {
        for hops in [1u32, 2, 3] {
            let g = path(11);
            let cfg = SamplerConfig {
                hops,
                max_nodes: 100,
            };
            let mut reference = SubgraphSampler::new(&g, cfg);
            let mut sweep = SweepSampler::new(&g, cfg);
            for (m, n) in [(0u32, 1u32), (2, 3), (5, 6), (0, 10), (9, 3)] {
                let want = reference.enclosing_subgraph(m, n);
                let got = sweep.enclosing_subgraph(m, n);
                assert_bitwise_eq(&got, &want, &format!("hops {hops} pair ({m},{n})"));
            }
        }
    }

    #[test]
    fn matches_with_target_masking_and_truncation() {
        let g = star_with_coupling(30);
        for max_nodes in [4usize, 10, 100] {
            let cfg = SamplerConfig { hops: 1, max_nodes };
            let mut reference = SubgraphSampler::new(&g, cfg);
            let mut sweep = SweepSampler::new(&g, cfg);
            // (1,2) is the coupled leaf pair — its target edge must be
            // masked identically; (0,1) spans center and leaf.
            for (m, n) in [(1u32, 2u32), (2, 1), (0, 1), (0, 5)] {
                let want = reference.enclosing_subgraph(m, n);
                let got = sweep.enclosing_subgraph(m, n);
                assert_bitwise_eq(&got, &want, &format!("max {max_nodes} pair ({m},{n})"));
            }
        }
    }

    #[test]
    fn extract_into_reuses_buffers_across_pairs() {
        let g = path(9);
        let cfg = SamplerConfig::default();
        let mut reference = SubgraphSampler::new(&g, cfg);
        let mut sweep = SweepSampler::new(&g, cfg);
        let mut out = sweep.enclosing_subgraph(0, 1);
        // Re-extract into the same buffers repeatedly, including going
        // from a larger to a smaller neighborhood and back.
        for (m, n) in [(3u32, 4u32), (0, 8), (7, 8), (2, 6), (3, 4)] {
            sweep.extract_into(m, n, &mut out);
            let want = reference.enclosing_subgraph(m, n);
            assert_bitwise_eq(&out, &want, &format!("pair ({m},{n})"));
        }
    }

    #[test]
    fn disconnected_anchors_match() {
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(NodeType::Net, "n0");
        let p1 = b.add_node(NodeType::Pin, "p1");
        let n2 = b.add_node(NodeType::Net, "n2");
        let p3 = b.add_node(NodeType::Pin, "p3");
        b.add_edge(n0, p1, EdgeType::NetPin);
        b.add_edge(n2, p3, EdgeType::NetPin);
        let g = b.build();
        let cfg = SamplerConfig::default();
        let want = SubgraphSampler::new(&g, cfg).enclosing_subgraph(n0, n2);
        let got = SweepSampler::new(&g, cfg).enclosing_subgraph(n0, n2);
        assert_bitwise_eq(&got, &want, "disconnected");
        assert_eq!(
            got.dist_a[got.nodes.iter().position(|&v| v == n2).unwrap()],
            { UNREACHABLE }
        );
    }

    #[test]
    #[should_panic(expected = "link anchors must differ")]
    fn equal_anchors_panic() {
        let g = path(3);
        let _ = SweepSampler::new(&g, SamplerConfig::default()).enclosing_subgraph(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_anchor_panics() {
        let g = path(3);
        let _ = SweepSampler::new(&g, SamplerConfig::default()).enclosing_subgraph(0, 9);
    }
}
