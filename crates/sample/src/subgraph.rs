//! Enclosing-subgraph extraction (Definition 1 of the paper, after SEAL):
//! the h-hop subgraph induced by the union of the anchors' neighborhoods.

use std::collections::HashMap;

use circuit_graph::{BfsScratch, CircuitGraph, XC_DIM};

/// A sampled enclosing subgraph with local (relabeled) node indices.
///
/// Anchor nodes come first: local index 0 is anchor `m`; for link tasks
/// local index 1 is anchor `n`. Edges are stored in directed form (each
/// undirected edge appears in both directions) ready for message passing.
#[derive(Debug, Clone)]
pub struct Subgraph {
    /// Parent-graph node id per local node (anchors first).
    pub nodes: Vec<u32>,
    /// Node-type code per local node.
    pub node_types: Vec<usize>,
    /// Circuit statistics (`XC`), `nodes.len() × XC_DIM`, row-major.
    pub xc: Vec<f32>,
    /// Directed edge sources (local indices).
    pub src: Vec<usize>,
    /// Directed edge destinations (local indices).
    pub dst: Vec<usize>,
    /// Edge-type code per directed edge.
    pub edge_types: Vec<usize>,
    /// Number of anchors (1 for node tasks, 2 for link tasks).
    pub num_anchors: usize,
    /// Shortest-path distance (within the subgraph) to anchor 0, per node.
    pub dist_a: Vec<u32>,
    /// Shortest-path distance to anchor 1 (equals `dist_a` for node tasks).
    pub dist_b: Vec<u32>,
}

/// Distance value used when a node cannot reach an anchor within the
/// subgraph (also the clamp for PE embedding tables).
pub const UNREACHABLE: u32 = 15;

impl Subgraph {
    /// Number of local nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of *directed* edges.
    pub fn num_directed_edges(&self) -> usize {
        self.src.len()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.src.len() / 2
    }

    /// The `XC` row of a local node.
    pub fn xc_row(&self, i: usize) -> &[f32] {
        &self.xc[i * XC_DIM..(i + 1) * XC_DIM]
    }

    /// Local adjacency as (src, dst) pairs (directed).
    pub fn directed_edges(&self) -> impl Iterator<Item = (usize, usize, usize)> + '_ {
        self.src
            .iter()
            .zip(&self.dst)
            .zip(&self.edge_types)
            .map(|((&s, &d), &t)| (s, d, t))
    }

    /// BFS distances from a local source within the subgraph, clamped to
    /// [`UNREACHABLE`].
    pub fn bfs_local(&self, source: usize) -> Vec<u32> {
        let n = self.num_nodes();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (&s, &d) in self.src.iter().zip(&self.dst) {
            adj[s].push(d);
        }
        let mut dist = vec![UNREACHABLE; n];
        let mut queue = std::collections::VecDeque::new();
        dist[source] = 0;
        queue.push_back(source);
        while let Some(v) = queue.pop_front() {
            let dv = dist[v];
            if dv >= UNREACHABLE - 1 {
                continue;
            }
            for &w in &adj[v] {
                if dist[w] == UNREACHABLE {
                    dist[w] = dv + 1;
                    queue.push_back(w);
                }
            }
        }
        dist
    }
}

/// Extraction parameters.
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Hop count `h` (1 for link tasks, 2 for node tasks in the paper).
    pub hops: u32,
    /// Hard cap on subgraph size; the highest-degree overflow nodes are
    /// dropped (keeps worst-case cost bounded on hub nets).
    pub max_nodes: usize,
}

impl Default for SamplerConfig {
    fn default() -> Self {
        SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        }
    }
}

/// Reusable sampler holding BFS scratch for one graph.
#[derive(Debug)]
pub struct SubgraphSampler<'g> {
    graph: &'g CircuitGraph,
    cfg: SamplerConfig,
    scratch: BfsScratch,
}

impl<'g> SubgraphSampler<'g> {
    /// Creates a sampler over `graph`.
    pub fn new(graph: &'g CircuitGraph, cfg: SamplerConfig) -> Self {
        SubgraphSampler {
            graph,
            cfg,
            scratch: BfsScratch::new(graph.num_nodes()),
        }
    }

    /// The graph being sampled.
    pub fn graph(&self) -> &CircuitGraph {
        self.graph
    }

    /// Extracts the h-hop enclosing subgraph for a link `(m, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `m == n` or either id is out of range.
    pub fn enclosing_subgraph(&mut self, m: u32, n: u32) -> Subgraph {
        assert_ne!(m, n, "link anchors must differ");
        let visited = self.scratch.run_multi(self.graph, &[m, n], self.cfg.hops);
        self.build(&[m, n], visited)
    }

    /// Extracts the h-hop subgraph around a single node (node-level tasks;
    /// the paper uses 2 hops here and DSPD degenerates to `D0 = D1`).
    pub fn node_subgraph(&mut self, v: u32) -> Subgraph {
        let visited = self.scratch.run(self.graph, v, self.cfg.hops);
        self.build(&[v], visited)
    }

    fn build(&mut self, anchors: &[u32], mut visited: Vec<u32>) -> Subgraph {
        // `visited` is in BFS order: anchors first, then increasing hop
        // distance. Truncation therefore drops the farthest nodes first.
        if visited.len() > self.cfg.max_nodes {
            visited.truncate(self.cfg.max_nodes);
        }
        let mut local: HashMap<u32, usize> = HashMap::with_capacity(visited.len());
        for (i, &v) in visited.iter().enumerate() {
            local.insert(v, i);
        }

        let n = visited.len();
        let mut node_types = Vec::with_capacity(n);
        let mut xc = Vec::with_capacity(n * XC_DIM);
        for &v in &visited {
            node_types.push(self.graph.node_type(v).code());
            xc.extend_from_slice(self.graph.xc_row(v));
        }

        // Induced directed edges: for each kept node, keep arcs to kept
        // neighbors. Each undirected parent edge contributes two arcs
        // (once from each endpoint's adjacency), with src = neighbor,
        // dst = node.
        //
        // SEAL protocol: the *target* link between the two anchors is
        // masked out of its own subgraph — otherwise the injected edge
        // leaks the target and collapses the DSPD distance pair to (0,1)
        // for positives and negatives alike.
        let mask_target = anchors.len() == 2;
        let mut src = Vec::new();
        let mut dst = Vec::new();
        let mut edge_types = Vec::new();
        for (i, &v) in visited.iter().enumerate() {
            let (nbrs, tys) = self.graph.adjacency(v);
            for (&w, &t) in nbrs.iter().zip(tys) {
                if let Some(&j) = local.get(&w) {
                    if mask_target
                        && (t as usize) >= 2
                        && ((i == 0 && j == 1) || (i == 1 && j == 0))
                    {
                        continue;
                    }
                    src.push(j);
                    dst.push(i);
                    edge_types.push(t as usize);
                }
            }
        }

        let mut sg = Subgraph {
            nodes: visited,
            node_types,
            xc,
            src,
            dst,
            edge_types,
            num_anchors: anchors.len(),
            dist_a: Vec::new(),
            dist_b: Vec::new(),
        };
        sg.dist_a = sg.bfs_local(0);
        sg.dist_b = if anchors.len() > 1 {
            sg.bfs_local(1)
        } else {
            sg.dist_a.clone()
        };
        sg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};

    /// Path graph p0 - p1 - p2 - p3 - p4 with alternating types.
    fn path(n: usize) -> CircuitGraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n)
            .map(|i| {
                b.add_node(
                    if i % 2 == 0 {
                        NodeType::Net
                    } else {
                        NodeType::Pin
                    },
                    &format!("v{i}"),
                )
            })
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], EdgeType::NetPin);
        }
        b.build()
    }

    #[test]
    fn one_hop_link_subgraph() {
        let g = path(7);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 1,
                max_nodes: 100,
            },
        );
        // Link (2,3): 1-hop union = {2,3} ∪ {1,4} = 4 nodes.
        let sg = s.enclosing_subgraph(2, 3);
        assert_eq!(sg.num_nodes(), 4);
        assert_eq!(sg.nodes[0], 2);
        assert_eq!(sg.nodes[1], 3);
        // Edges among {1,2,3,4}: (1,2),(2,3),(3,4) -> 6 directed arcs.
        assert_eq!(sg.num_directed_edges(), 6);
        assert_eq!(sg.num_edges(), 3);
    }

    #[test]
    fn dspd_distances_in_subgraph() {
        let g = path(7);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 1,
                max_nodes: 100,
            },
        );
        let sg = s.enclosing_subgraph(2, 3);
        // local 0 = node 2, local 1 = node 3.
        assert_eq!(sg.dist_a[0], 0);
        assert_eq!(sg.dist_b[0], 1);
        // node 1 (local?) is 1 from anchor 2, 2 from anchor 3.
        let l1 = sg.nodes.iter().position(|&v| v == 1).unwrap();
        assert_eq!(sg.dist_a[l1], 1);
        assert_eq!(sg.dist_b[l1], 2);
    }

    #[test]
    fn every_directed_edge_has_reverse() {
        let g = path(9);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 100,
            },
        );
        let sg = s.enclosing_subgraph(4, 5);
        let pairs: std::collections::HashSet<(usize, usize)> =
            sg.src.iter().zip(&sg.dst).map(|(&a, &b)| (a, b)).collect();
        for &(a, b) in &pairs {
            assert!(pairs.contains(&(b, a)), "missing reverse of ({a},{b})");
        }
    }

    #[test]
    fn node_subgraph_has_single_anchor_and_equal_dists() {
        let g = path(9);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 100,
            },
        );
        let sg = s.node_subgraph(4);
        assert_eq!(sg.num_anchors, 1);
        assert_eq!(sg.num_nodes(), 5); // 4 ± 2 hops
        assert_eq!(sg.dist_a, sg.dist_b);
    }

    #[test]
    fn max_nodes_truncates_far_nodes_first() {
        // Star: center 0 with 50 leaves.
        let mut b = GraphBuilder::new();
        let c = b.add_node(NodeType::Net, "c");
        for i in 0..50 {
            let leaf = b.add_node(NodeType::Pin, &format!("l{i}"));
            b.add_edge(c, leaf, EdgeType::NetPin);
        }
        let g = b.build();
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 1,
                max_nodes: 10,
            },
        );
        let sg = s.node_subgraph(c);
        assert_eq!(sg.num_nodes(), 10);
        assert_eq!(sg.nodes[0], c, "anchor survives truncation");
    }

    #[test]
    fn xc_rows_carried_over() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeType::Net, "a");
        let p = b.add_node(NodeType::Pin, "p");
        b.set_xc(a, 0, 42.0);
        b.set_xc(p, 0, 7.0);
        b.add_edge(a, p, EdgeType::NetPin);
        let g = b.build();
        let mut s = SubgraphSampler::new(&g, SamplerConfig::default());
        let sg = s.enclosing_subgraph(a, p);
        assert_eq!(sg.xc_row(0)[0], 42.0);
        assert_eq!(sg.xc_row(1)[0], 7.0);
    }

    #[test]
    fn unreachable_anchor_distance_is_clamped() {
        // Two components: 0-1, 2-3. Force a link between components by
        // injecting it? Without injection the anchors are disconnected,
        // which models a negative pair whose endpoints share no context.
        let mut b = GraphBuilder::new();
        let n0 = b.add_node(NodeType::Net, "n0");
        let p1 = b.add_node(NodeType::Pin, "p1");
        let n2 = b.add_node(NodeType::Net, "n2");
        let p3 = b.add_node(NodeType::Pin, "p3");
        b.add_edge(n0, p1, EdgeType::NetPin);
        b.add_edge(n2, p3, EdgeType::NetPin);
        let g = b.build();
        let mut s = SubgraphSampler::new(&g, SamplerConfig::default());
        let sg = s.enclosing_subgraph(n0, n2);
        let l2 = sg.nodes.iter().position(|&v| v == n2).unwrap();
        assert_eq!(sg.dist_a[l2], UNREACHABLE);
        assert_eq!(sg.dist_b[l2], 0);
    }
}
