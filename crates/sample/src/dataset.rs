//! End-to-end dataset assembly: SPF join → balancing → negative
//! generation → SEAL-style link injection → parallel enclosing-subgraph
//! extraction.

use ams_netlist::{Netlist, SpfFile, SpfNode};
use circuit_graph::{CircuitGraph, Edge, NodeMap, NodeType};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::links::{generate_negatives, Link, LinkSet};
use crate::subgraph::{SamplerConfig, Subgraph, SubgraphSampler};

/// Dataset assembly parameters.
#[derive(Debug, Clone, Copy)]
pub struct DatasetConfig {
    /// Hop count for enclosing subgraphs (paper: 1 for links, 2 for nodes).
    pub hops: u32,
    /// Subgraph size cap.
    pub max_nodes: usize,
    /// Cap on positive links sampled per type (after the paper's
    /// `|E_n2n|` balancing); bounds training cost on large designs.
    pub max_per_type: usize,
    /// Capacitance filter range, farads.
    pub cap_range: (f64, f64),
    /// RNG seed for balancing and negative generation.
    pub seed: u64,
}

impl Default for DatasetConfig {
    fn default() -> Self {
        DatasetConfig {
            hops: 1,
            max_nodes: 2048,
            max_per_type: 2000,
            cap_range: (1e-21, 1e-15),
            seed: 0xDA7A,
        }
    }
}

/// One link-level training/evaluation sample.
#[derive(Debug, Clone)]
pub struct LinkSample {
    /// The target link (label 1/0, capacitance).
    pub link: Link,
    /// Its enclosing subgraph (anchors at local 0 and 1).
    pub subgraph: Subgraph,
}

/// A link-level dataset for one design.
#[derive(Debug)]
pub struct LinkDataset {
    /// Design name.
    pub design: String,
    /// Samples (positives and negatives, shuffled).
    pub samples: Vec<LinkSample>,
    /// Mean subgraph node count (Table IV column `N/G¹ₘₙ`).
    pub mean_subgraph_nodes: f64,
    /// Mean subgraph undirected edge count (Table IV column `NE/G¹ₘₙ`).
    pub mean_subgraph_edges: f64,
    /// Number of positive links before balancing, per type `[p2n,p2p,n2n]`.
    pub raw_counts: [usize; 3],
}

impl LinkDataset {
    /// Builds the dataset for one design.
    ///
    /// Follows the paper's protocol: join SPF couplings, balance by the
    /// rarest type, generate structural negatives, inject *all* sampled
    /// links into the graph (SEAL setup), then extract 1-hop enclosing
    /// subgraphs in parallel.
    pub fn build(
        design: &str,
        graph: &CircuitGraph,
        netlist: &Netlist,
        map: &NodeMap,
        spf: &SpfFile,
        cfg: &DatasetConfig,
    ) -> LinkDataset {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let all = LinkSet::from_spf(spf, netlist, graph, map, cfg.cap_range);
        let raw_counts = all.counts();
        let per_type = all.balance_count().min(cfg.max_per_type);
        let positives = all.balanced(per_type, &mut rng);
        let negatives = generate_negatives(graph, &positives, &all, cfg.seed ^ 0x5eed);

        let mut links: Vec<Link> = positives;
        links.extend(negatives);
        links.shuffle(&mut rng);

        // SEAL link injection: ALL observed positive couplings plus the
        // sampled negatives become edges of the augmented graph (each
        // target's own edge is masked back out during extraction). The
        // full coupling context is what makes the enclosing subgraphs
        // informative — a balanced-subset injection leaves the context
        // too sparse for common-neighbor structure to emerge.
        let mut injected: Vec<Edge> = Vec::with_capacity(all.len() + links.len());
        for group in [&all.p2n, &all.p2p, &all.n2n] {
            injected.extend(group.iter().map(|l| Edge {
                a: l.a,
                b: l.b,
                ty: l.ty,
            }));
        }
        injected.extend(links.iter().filter(|l| l.label < 0.5).map(|l| Edge {
            a: l.a,
            b: l.b,
            ty: l.ty,
        }));
        let aug = graph.with_injected_links(&injected);

        let sampler_cfg = SamplerConfig {
            hops: cfg.hops,
            max_nodes: cfg.max_nodes,
        };
        let samples: Vec<LinkSample> = links
            .par_chunks(128)
            .flat_map_iter(|chunk| {
                let mut sampler = SubgraphSampler::new(&aug, sampler_cfg);
                chunk
                    .iter()
                    .map(|&link| LinkSample {
                        link,
                        subgraph: sampler.enclosing_subgraph(link.a, link.b),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();

        let (sum_n, sum_e) = samples.iter().fold((0usize, 0usize), |(n, e), s| {
            (n + s.subgraph.num_nodes(), e + s.subgraph.num_edges())
        });
        let count = samples.len().max(1) as f64;
        LinkDataset {
            design: design.to_string(),
            samples,
            mean_subgraph_nodes: sum_n as f64 / count,
            mean_subgraph_edges: sum_e as f64 / count,
            raw_counts,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

/// One node-level sample (ground-capacitance regression).
#[derive(Debug, Clone)]
pub struct NodeSample {
    /// Target node id in the parent graph.
    pub node: u32,
    /// Ground capacitance, farads.
    pub cap: f64,
    /// 2-hop subgraph around the node (single anchor).
    pub subgraph: Subgraph,
}

/// A node-level dataset for one design.
#[derive(Debug)]
pub struct NodeDataset {
    /// Design name.
    pub design: String,
    /// Samples.
    pub samples: Vec<NodeSample>,
}

impl NodeDataset {
    /// Builds the node-regression dataset: joins SPF *ground* capacitances
    /// onto net/pin nodes and extracts h-hop (default 2) subgraphs.
    /// No negative injection is used, matching Section IV-D.
    #[allow(clippy::too_many_arguments)] // mirrors LinkDataset::build's signature
    pub fn build(
        design: &str,
        graph: &CircuitGraph,
        netlist: &Netlist,
        map: &NodeMap,
        spf: &SpfFile,
        max_samples: usize,
        hops: u32,
        seed: u64,
    ) -> NodeDataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut targets: Vec<(u32, f64)> = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for g in &spf.ground_caps {
            if g.value < 1e-21 || g.value > 1e-15 {
                continue;
            }
            let Some(v) = map.resolve(netlist, &g.node) else {
                continue;
            };
            // Only net and pin nodes carry ground-cap targets.
            if graph.node_type(v) == NodeType::Device {
                continue;
            }
            let merged = matches!(&g.node, SpfNode::Pin { .. });
            let _ = merged;
            if seen.insert(v) {
                targets.push((v, g.value));
            }
        }
        targets.shuffle(&mut rng);
        targets.truncate(max_samples);

        let sampler_cfg = SamplerConfig {
            hops,
            max_nodes: 2048,
        };
        let samples: Vec<NodeSample> = targets
            .par_chunks(128)
            .flat_map_iter(|chunk| {
                let mut sampler = SubgraphSampler::new(graph, sampler_cfg);
                chunk
                    .iter()
                    .map(|&(node, cap)| NodeSample {
                        node,
                        cap,
                        subgraph: sampler.node_subgraph(node),
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        NodeDataset {
            design: design.to_string(),
            samples,
        }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_datagen::{generate_with_parasitics, DesignKind, SizePreset};
    use circuit_graph::netlist_to_graph;

    fn tiny_dataset() -> LinkDataset {
        let (design, spf) =
            generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 2).unwrap();
        let (graph, map) = netlist_to_graph(&design.netlist);
        LinkDataset::build(
            "TIMING_CONTROL",
            &graph,
            &design.netlist,
            &map,
            &spf,
            &DatasetConfig {
                max_per_type: 150,
                ..Default::default()
            },
        )
    }

    #[test]
    fn dataset_is_roughly_balanced() {
        let ds = tiny_dataset();
        assert!(!ds.is_empty());
        let pos = ds.samples.iter().filter(|s| s.link.label > 0.5).count();
        let neg = ds.len() - pos;
        // Negatives match positives up to retry failures.
        assert!(neg > 0);
        assert!(
            (pos as f64 - neg as f64).abs() / pos as f64 <= 0.2,
            "pos={pos} neg={neg}"
        );
    }

    #[test]
    fn target_link_is_masked_in_its_own_subgraph() {
        // SEAL protocol: other injected links provide context, but the
        // target link between the anchors is removed from its own
        // subgraph to prevent label leakage (for positives AND
        // negatives).
        let ds = tiny_dataset();
        for s in ds.samples.iter().take(50) {
            let has_anchor_link = s
                .subgraph
                .directed_edges()
                .any(|(a, b, t)| (a == 0 && b == 1 || a == 1 && b == 0) && t >= 2);
            assert!(
                !has_anchor_link,
                "label {} target link leaked into its subgraph",
                s.link.label
            );
        }
    }

    #[test]
    fn context_links_remain_injected() {
        // Links of *other* pairs must still appear somewhere: count
        // link-typed edges across all subgraphs.
        let ds = tiny_dataset();
        let context_links: usize = ds
            .samples
            .iter()
            .map(|s| {
                s.subgraph
                    .directed_edges()
                    .filter(|&(_, _, t)| t >= 2)
                    .count()
            })
            .sum();
        assert!(context_links > 0, "injection removed all coupling context");
    }

    #[test]
    fn subgraph_stats_are_positive() {
        let ds = tiny_dataset();
        assert!(ds.mean_subgraph_nodes > 3.0);
        assert!(ds.mean_subgraph_edges >= ds.mean_subgraph_nodes - 1.0);
    }

    #[test]
    fn determinism() {
        let a = tiny_dataset();
        let b = tiny_dataset();
        assert_eq!(a.len(), b.len());
        for (x, y) in a.samples.iter().zip(&b.samples).take(20) {
            assert_eq!(x.link.a, y.link.a);
            assert_eq!(x.subgraph.nodes, y.subgraph.nodes);
        }
    }

    #[test]
    fn node_dataset_builds() {
        let (design, spf) =
            generate_with_parasitics(DesignKind::TimingControl, SizePreset::Tiny, 2).unwrap();
        let (graph, map) = netlist_to_graph(&design.netlist);
        let ds = NodeDataset::build(
            "TIMING_CONTROL",
            &graph,
            &design.netlist,
            &map,
            &spf,
            200,
            2,
            1,
        );
        assert!(!ds.is_empty());
        for s in &ds.samples {
            assert_eq!(s.subgraph.num_anchors, 1);
            assert!(s.cap > 0.0);
            assert_ne!(graph.node_type(s.node), NodeType::Device);
            assert_eq!(s.subgraph.nodes[0], s.node);
        }
    }
}
