//! Feature and target normalization (Section IV-C: `XC` and capacitance
//! values are normalized to `[0, 1]` to avoid numerical instability).

use circuit_graph::{CircuitGraph, XC_DIM};

/// Min-max normalizer for the circuit-statistics matrix `XC`, fitted on
/// the training designs and reused unchanged on test designs (no test-set
/// leakage).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct XcNormalizer {
    min: Vec<f32>,
    max: Vec<f32>,
}

impl XcNormalizer {
    /// Fits per-dimension min/max over the nodes of the given graphs.
    ///
    /// # Panics
    ///
    /// Panics if `graphs` is empty.
    pub fn fit(graphs: &[&CircuitGraph]) -> Self {
        assert!(!graphs.is_empty(), "need at least one graph to fit");
        let mut min = vec![f32::MAX; XC_DIM];
        let mut max = vec![f32::MIN; XC_DIM];
        for g in graphs {
            for row in g.xc().chunks_exact(XC_DIM) {
                for (d, &v) in row.iter().enumerate() {
                    min[d] = min[d].min(v);
                    max[d] = max[d].max(v);
                }
            }
        }
        XcNormalizer { min, max }
    }

    /// Normalizes one `XC` row into `out` (both `XC_DIM` long). Values
    /// outside the fitted range clamp to `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths differ from [`XC_DIM`].
    pub fn transform_into(&self, row: &[f32], out: &mut [f32]) {
        assert_eq!(row.len(), XC_DIM);
        assert_eq!(out.len(), XC_DIM);
        for d in 0..XC_DIM {
            let range = self.max[d] - self.min[d];
            out[d] = if range > 0.0 {
                ((row[d] - self.min[d]) / range).clamp(0.0, 1.0)
            } else {
                0.0
            };
        }
    }

    /// Normalizes a full row-major `XC` matrix.
    pub fn transform(&self, xc: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0; xc.len()];
        for (r, o) in xc.chunks_exact(XC_DIM).zip(out.chunks_exact_mut(XC_DIM)) {
            self.transform_into(r, o);
        }
        out
    }
}

/// Log-scale min-max normalizer for capacitance targets.
///
/// The paper clamps targets to `1e-21..1e-15` F and normalizes to
/// `[0, 1]`. Because the values span six decades, we normalize
/// `log10(cap)`; a linear min-max would collapse almost all targets
/// against 0 and make the reported MAE meaningless. Negative links carry
/// zero capacitance and map to exactly 0.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CapNormalizer {
    log_min: f64,
    log_max: f64,
}

impl CapNormalizer {
    /// Creates a normalizer for the paper's clamp range.
    pub fn paper_range() -> Self {
        CapNormalizer::from_range(1e-21, 1e-15)
    }

    /// Creates a normalizer for an arbitrary positive range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi`.
    pub fn from_range(lo: f64, hi: f64) -> Self {
        assert!(lo > 0.0 && hi > lo, "invalid capacitance range");
        CapNormalizer {
            log_min: lo.log10(),
            log_max: hi.log10(),
        }
    }

    /// Encodes a capacitance (farads) to a `[0, 1]` target.
    pub fn encode(&self, cap: f64) -> f32 {
        if cap <= 0.0 {
            return 0.0;
        }
        (((cap.log10() - self.log_min) / (self.log_max - self.log_min)).clamp(0.0, 1.0)) as f32
    }

    /// Decodes a `[0, 1]` prediction back to farads.
    pub fn decode(&self, y: f32) -> f64 {
        10f64.powf(self.log_min + (self.log_max - self.log_min) * y.clamp(0.0, 1.0) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};

    #[test]
    fn xc_normalizer_scales_to_unit() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeType::Net, "a");
        let c = b.add_node(NodeType::Net, "c");
        b.set_xc(a, 0, 2.0);
        b.set_xc(c, 0, 10.0);
        b.set_xc(a, 1, 5.0);
        b.set_xc(c, 1, 5.0);
        b.add_edge(a, c, EdgeType::NetPin);
        let g = b.build();
        let norm = XcNormalizer::fit(&[&g]);
        let t = norm.transform(g.xc());
        assert_eq!(t[0], 0.0);
        assert_eq!(t[XC_DIM], 1.0);
        // Constant dimension maps to 0, not NaN.
        assert_eq!(t[1], 0.0);
        assert!(t.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn xc_normalizer_clamps_unseen_values() {
        let mut b = GraphBuilder::new();
        let a = b.add_node(NodeType::Net, "a");
        let c = b.add_node(NodeType::Net, "c");
        b.set_xc(a, 0, 0.0);
        b.set_xc(c, 0, 1.0);
        b.add_edge(a, c, EdgeType::NetPin);
        let g = b.build();
        let norm = XcNormalizer::fit(&[&g]);
        let mut out = vec![0.0; XC_DIM];
        let mut row = vec![0.0; XC_DIM];
        row[0] = 5.0; // outside fitted range
        norm.transform_into(&row, &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn cap_normalizer_round_trips() {
        let n = CapNormalizer::paper_range();
        for cap in [1e-21, 1e-18, 3.7e-17, 1e-15] {
            let y = n.encode(cap);
            let back = n.decode(y);
            assert!(
                (back.log10() - cap.log10()).abs() < 1e-3,
                "{cap} -> {y} -> {back}"
            );
        }
    }

    #[test]
    fn cap_normalizer_boundaries() {
        let n = CapNormalizer::paper_range();
        assert_eq!(n.encode(0.0), 0.0);
        assert_eq!(n.encode(1e-21), 0.0);
        assert_eq!(n.encode(1e-15), 1.0);
        assert!(n.encode(1e-10) <= 1.0);
        let mid = n.encode(1e-18);
        assert!(
            mid > 0.4 && mid < 0.6,
            "1e-18 should be mid-range, got {mid}"
        );
    }
}
