//! Joins SPF coupling capacitances onto graph node pairs, generates
//! structural negative links and balances the dataset (Section III-B).

use std::collections::HashSet;

use ams_netlist::{Netlist, SpfFile};
use circuit_graph::{CircuitGraph, EdgeType, NodeMap};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A labeled (possibly negative) coupling link between two graph nodes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// First endpoint (graph node id).
    pub a: u32,
    /// Second endpoint (graph node id).
    pub b: u32,
    /// Coupling link type (`p2n`, `p2p` or `n2n`).
    pub ty: EdgeType,
    /// 1.0 for observed couplings, 0.0 for structural negatives.
    pub label: f32,
    /// Coupling capacitance in farads (0.0 for negatives).
    pub cap: f64,
}

/// Positive links of one design, grouped by type.
#[derive(Debug, Clone, Default)]
pub struct LinkSet {
    /// Pin-net couplings.
    pub p2n: Vec<Link>,
    /// Pin-pin couplings.
    pub p2p: Vec<Link>,
    /// Net-net couplings.
    pub n2n: Vec<Link>,
}

impl LinkSet {
    /// Total number of positive links.
    pub fn len(&self) -> usize {
        self.p2n.len() + self.p2p.len() + self.n2n.len()
    }

    /// Whether no links were joined.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counts per type `[p2n, p2p, n2n]`.
    pub fn counts(&self) -> [usize; 3] {
        [self.p2n.len(), self.p2p.len(), self.n2n.len()]
    }

    /// Extracts the positive links of a design by joining its SPF coupling
    /// capacitances onto graph nodes.
    ///
    /// Couplings whose endpoints cannot be resolved (e.g. pins optimized
    /// away) are skipped; couplings outside `cap_range` are dropped, as in
    /// the paper's filtering step.
    pub fn from_spf(
        spf: &SpfFile,
        netlist: &Netlist,
        graph: &CircuitGraph,
        map: &NodeMap,
        cap_range: (f64, f64),
    ) -> LinkSet {
        let mut set = LinkSet::default();
        let mut seen: HashSet<(u32, u32)> = HashSet::new();
        for c in &spf.coupling_caps {
            if c.value < cap_range.0 || c.value > cap_range.1 {
                continue;
            }
            let (Some(a), Some(b)) = (map.resolve(netlist, &c.a), map.resolve(netlist, &c.b))
            else {
                continue;
            };
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if !seen.insert(key) {
                continue;
            }
            let Some(ty) = EdgeType::link_between(graph.node_type(a), graph.node_type(b)) else {
                continue;
            };
            let link = Link {
                a,
                b,
                ty,
                label: 1.0,
                cap: c.value,
            };
            match ty {
                EdgeType::CouplingPinNet => set.p2n.push(link),
                EdgeType::CouplingPinPin => set.p2p.push(link),
                EdgeType::CouplingNetNet => set.n2n.push(link),
                _ => unreachable!("link_between only returns coupling types"),
            }
        }
        set
    }

    /// Balances the set by sampling `per_type` links from each type
    /// (the paper samples `|E_n2n|` from each type to fight imbalance).
    /// Types with fewer links contribute all of them.
    pub fn balanced(&self, per_type: usize, rng: &mut StdRng) -> Vec<Link> {
        let mut out = Vec::new();
        for group in [&self.p2n, &self.p2p, &self.n2n] {
            if group.len() <= per_type {
                out.extend_from_slice(group);
            } else {
                let mut idx: Vec<usize> = (0..group.len()).collect();
                idx.shuffle(rng);
                out.extend(idx[..per_type].iter().map(|&i| group[i]));
            }
        }
        out
    }

    /// The paper's balancing count: the size of the rarest type (`n2n`).
    pub fn balance_count(&self) -> usize {
        self.counts().into_iter().min().unwrap_or(0)
    }
}

/// Generates structural negative links for a slice of positives by
/// permuting sources/destinations within each link type (Section III-B:
/// negatives keep the node-type signature of their type).
///
/// A candidate is rejected if it coincides with a schematic edge, an
/// observed positive, or a previously generated negative; rejected
/// candidates are retried with random partners so the return length
/// matches `positives.len()` unless the graph is too small.
pub fn generate_negatives(
    graph: &CircuitGraph,
    positives: &[Link],
    all_positives: &LinkSet,
    seed: u64,
) -> Vec<Link> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut taken: HashSet<(u32, u32)> = HashSet::new();
    for group in [&all_positives.p2n, &all_positives.p2p, &all_positives.n2n] {
        for l in group {
            taken.insert((l.a.min(l.b), l.a.max(l.b)));
        }
    }

    // Per-type endpoint pools drawn from the positives themselves
    // (permutation negatives, as in SEAL and the paper).
    let mut srcs: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let mut dsts: [Vec<u32>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    let type_slot = |ty: EdgeType| ty.code() - 2;
    for l in positives {
        srcs[type_slot(l.ty)].push(l.a);
        dsts[type_slot(l.ty)].push(l.b);
    }

    let mut negatives = Vec::with_capacity(positives.len());
    for l in positives {
        let slot = type_slot(l.ty);
        let mut found = None;
        for _ in 0..64 {
            let a = srcs[slot][rng.gen_range(0..srcs[slot].len())];
            let b = dsts[slot][rng.gen_range(0..dsts[slot].len())];
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if taken.contains(&key) || graph.has_edge(a, b) {
                continue;
            }
            taken.insert(key);
            found = Some((a, b));
            break;
        }
        if let Some((a, b)) = found {
            negatives.push(Link {
                a,
                b,
                ty: l.ty,
                label: 0.0,
                cap: 0.0,
            });
        }
    }
    negatives
}

#[cfg(test)]
mod tests {
    use super::*;
    use ams_datagen::{generate_with_parasitics, DesignKind, SizePreset};
    use circuit_graph::netlist_to_graph;

    fn tiny_links() -> (CircuitGraph, LinkSet) {
        let (design, spf) =
            generate_with_parasitics(DesignKind::Array128x32, SizePreset::Tiny, 1).unwrap();
        let (graph, map) = netlist_to_graph(&design.netlist);
        let links = LinkSet::from_spf(&spf, &design.netlist, &graph, &map, (1e-21, 1e-15));
        (graph, links)
    }

    #[test]
    fn joins_all_three_types() {
        let (_, links) = tiny_links();
        let [p2n, p2p, n2n] = links.counts();
        assert!(p2n > 0 && p2p > 0 && n2n > 0, "{p2n}/{p2p}/{n2n}");
        assert!(p2n >= n2n, "paper: p2n should dominate");
    }

    #[test]
    fn link_types_match_endpoint_node_types() {
        let (graph, links) = tiny_links();
        for l in &links.p2p {
            assert_eq!(
                EdgeType::link_between(graph.node_type(l.a), graph.node_type(l.b)),
                Some(EdgeType::CouplingPinPin)
            );
        }
        for l in &links.n2n {
            assert_eq!(
                EdgeType::link_between(graph.node_type(l.a), graph.node_type(l.b)),
                Some(EdgeType::CouplingNetNet)
            );
        }
    }

    #[test]
    fn balanced_sampling_caps_each_type() {
        let (_, links) = tiny_links();
        let mut rng = StdRng::seed_from_u64(0);
        let n = links.balance_count();
        let bal = links.balanced(n, &mut rng);
        assert!(bal.len() <= 3 * n);
        let p2n = bal
            .iter()
            .filter(|l| l.ty == EdgeType::CouplingPinNet)
            .count();
        assert!(p2n <= n);
    }

    #[test]
    fn negatives_are_disjoint_from_positives_and_edges() {
        let (graph, links) = tiny_links();
        let mut rng = StdRng::seed_from_u64(7);
        let pos = links.balanced(links.balance_count(), &mut rng);
        let neg = generate_negatives(&graph, &pos, &links, 3);
        assert!(!neg.is_empty());
        let pos_keys: HashSet<(u32, u32)> = links
            .p2n
            .iter()
            .chain(&links.p2p)
            .chain(&links.n2n)
            .map(|l| (l.a.min(l.b), l.a.max(l.b)))
            .collect();
        for n in &neg {
            assert_eq!(n.label, 0.0);
            assert_eq!(n.cap, 0.0);
            assert!(
                !pos_keys.contains(&(n.a.min(n.b), n.a.max(n.b))),
                "negative hit a positive"
            );
            assert!(
                !graph.has_edge(n.a, n.b),
                "negative coincides with a schematic edge"
            );
        }
    }

    #[test]
    fn negatives_preserve_type_signature() {
        let (graph, links) = tiny_links();
        let mut rng = StdRng::seed_from_u64(7);
        let pos = links.balanced(links.balance_count(), &mut rng);
        let neg = generate_negatives(&graph, &pos, &links, 3);
        for n in &neg {
            assert_eq!(
                EdgeType::link_between(graph.node_type(n.a), graph.node_type(n.b)),
                Some(n.ty),
                "negative endpoints must match their link type"
            );
        }
    }

    #[test]
    fn cap_filter_applies() {
        let (design, spf) =
            generate_with_parasitics(DesignKind::Array128x32, SizePreset::Tiny, 1).unwrap();
        let (graph, map) = netlist_to_graph(&design.netlist);
        let none = LinkSet::from_spf(&spf, &design.netlist, &graph, &map, (1.0, 2.0));
        assert!(none.is_empty());
    }
}
