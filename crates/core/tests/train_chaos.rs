//! Chaos test for the training loop's divergence abort: a loss that goes
//! NaN mid-run must surface as [`TrainError::NonFiniteLoss`] while the
//! last epoch-boundary snapshot stays a valid resume point.
//!
//! Lives in its own test file because the failpoint registry is
//! process-global — a separate integration test binary is a separate
//! process, so the armed `train.loss` point cannot leak into (or be
//! polluted by) other tests.
#![cfg(feature = "failpoints")]

use circuit_graph::{EdgeType, GraphBuilder, NodeType};
use circuitgps::{
    train_resumable, CircuitGps, ModelConfig, PreparedSample, ResumableTrain, Task, TrainConfig,
    TrainError, TrainState,
};
use graph_pe::PeKind;
use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

fn toy_dataset() -> Vec<PreparedSample> {
    let mut b = GraphBuilder::new();
    let hub_a = b.add_node(NodeType::Net, "a");
    let hub_b = b.add_node(NodeType::Net, "b");
    let mut pins = Vec::new();
    for i in 0..8 {
        let p = b.add_node(NodeType::Pin, &format!("p{i}"));
        b.add_edge(if i % 2 == 0 { hub_a } else { hub_b }, p, EdgeType::NetPin);
        pins.push(p);
    }
    let g = b.build();
    let xcn = XcNormalizer::fit(&[&g]);
    let mut sampler = SubgraphSampler::new(
        &g,
        SamplerConfig {
            hops: 1,
            max_nodes: 32,
        },
    );
    (0..pins.len() - 1)
        .map(|i| {
            let y = (i % 2) as f32;
            let sub = sampler.enclosing_subgraph(pins[i], pins[i + 1]);
            PreparedSample::new(sub, PeKind::Dspd, &xcn, y, y * 0.5)
        })
        .collect()
}

fn tiny_model() -> CircuitGps {
    CircuitGps::new(ModelConfig {
        hidden_dim: 16,
        pe_dim: 4,
        heads: 2,
        num_layers: 1,
        dropout: 0.0,
        ..Default::default()
    })
}

/// An injected NaN loss in epoch 3 aborts the run with a named error,
/// the latest `epoch_end` snapshot is from epoch 2, and resuming from it
/// (failpoint disarmed) finishes with the same history as a clean run.
#[test]
fn injected_nan_loss_aborts_and_the_last_snapshot_resumes_cleanly() {
    let data = toy_dataset();
    let cfg = TrainConfig {
        epochs: 5,
        batch_size: 4,
        lr: 5e-3,
        ..Default::default()
    };
    let steps_per_epoch = data.len().div_ceil(cfg.batch_size);

    // Reference: clean straight-through run.
    let mut clean = tiny_model();
    let clean_out = train_resumable(
        &mut clean,
        &data,
        &cfg,
        ResumableTrain {
            task: Task::LinkPrediction,
            ..Default::default()
        },
        &mut |_, _| {},
        &mut |_, _| {},
    )
    .unwrap();

    // Chaos run: NaN injected at the first batch of epoch 3.
    cirgps_failpoints::clear_all();
    cirgps_failpoints::set("train.loss", &format!("error@{}", 2 * steps_per_epoch + 1));
    let mut chaotic = tiny_model();
    let mut snapshots: Vec<TrainState> = Vec::new();
    let err = train_resumable(
        &mut chaotic,
        &data,
        &cfg,
        ResumableTrain {
            task: Task::LinkPrediction,
            ..Default::default()
        },
        &mut |_, _| {},
        &mut |_, st| snapshots.push(st.clone()),
    )
    .unwrap_err();
    cirgps_failpoints::clear_all();
    let TrainError::NonFiniteLoss { epoch, step, loss } = err;
    assert_eq!(epoch, 3);
    assert_eq!(step, 2 * steps_per_epoch);
    assert!(loss.is_nan(), "{loss}");

    // The abort fired before epoch 3's callbacks: the rolling snapshot
    // trail ends at the epoch-2 boundary, intact.
    assert_eq!(snapshots.len(), 2, "epoch_end ran for a diverged epoch");
    let last = snapshots.last().unwrap().clone();
    assert_eq!(last.epochs_done, 2);
    assert_eq!(last.epoch_losses, clean_out.history.epoch_losses[..2]);

    // Resuming from that snapshot (wire round-trip, as the CLI does)
    // completes the run with the clean run's exact history: the diverged
    // step never touched the weights.
    let restored = TrainState::from_bytes(&last.to_bytes()).unwrap();
    restored.check_resume(Task::LinkPrediction, &cfg).unwrap();
    let resumed = train_resumable(
        &mut chaotic,
        &data,
        &cfg,
        ResumableTrain {
            task: Task::LinkPrediction,
            resume: Some(restored),
            stop: None,
        },
        &mut |_, _| {},
        &mut |_, _| {},
    )
    .unwrap();
    assert!(!resumed.interrupted);
    assert_eq!(resumed.state.epochs_done, cfg.epochs);
    assert_eq!(resumed.history.epoch_losses, clean_out.history.epoch_losses);
}
