//! Evaluation metrics: classification (accuracy, F1, ROC-AUC) and
//! regression (MAE, RMSE, R², MAPE), matching the paper's tables.

/// Classification metrics for the link-prediction task (Tables II/III/V).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinkMetrics {
    /// Accuracy at threshold 0.5.
    pub accuracy: f64,
    /// F1 score of the positive class at threshold 0.5.
    pub f1: f64,
    /// Area under the ROC curve (rank-based, tie-aware).
    pub auc: f64,
}

/// Computes [`LinkMetrics`] from scores in `[0, 1]` and binary labels.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn link_metrics(scores: &[f32], labels: &[f32]) -> LinkMetrics {
    assert_eq!(scores.len(), labels.len(), "scores/labels length mismatch");
    assert!(!scores.is_empty(), "cannot compute metrics on an empty set");
    let mut tp = 0.0f64;
    let mut fp = 0.0f64;
    let mut tn = 0.0f64;
    let mut fn_ = 0.0f64;
    for (&s, &y) in scores.iter().zip(labels) {
        let pred = s >= 0.5;
        let pos = y >= 0.5;
        match (pred, pos) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, false) => tn += 1.0,
            (false, true) => fn_ += 1.0,
        }
    }
    let accuracy = (tp + tn) / (tp + tn + fp + fn_);
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    let f1 = if precision + recall > 0.0 {
        2.0 * precision * recall / (precision + recall)
    } else {
        0.0
    };
    LinkMetrics {
        accuracy,
        f1,
        auc: roc_auc(scores, labels),
    }
}

/// Rank-based ROC-AUC (Mann–Whitney U with midranks for ties).
///
/// Returns 0.5 when either class is absent.
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&y| y >= 0.5).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    // Midranks over tied score groups.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            if labels[k] >= 0.5 {
                rank_sum_pos += midrank;
            }
        }
        i = j + 1;
    }
    let u = rank_sum_pos - (n_pos as f64 * (n_pos as f64 + 1.0)) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Regression metrics (Tables VI/VII/VIII).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegMetrics {
    /// Mean absolute error.
    pub mae: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Computes [`RegMetrics`] from predictions and targets.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn reg_metrics(preds: &[f32], targets: &[f32]) -> RegMetrics {
    assert_eq!(preds.len(), targets.len(), "preds/targets length mismatch");
    assert!(!preds.is_empty(), "cannot compute metrics on an empty set");
    let n = preds.len() as f64;
    let mae = preds
        .iter()
        .zip(targets)
        .map(|(&p, &y)| (p - y).abs() as f64)
        .sum::<f64>()
        / n;
    let mse = preds
        .iter()
        .zip(targets)
        .map(|(&p, &y)| ((p - y) as f64).powi(2))
        .sum::<f64>()
        / n;
    let mean_y = targets.iter().map(|&y| y as f64).sum::<f64>() / n;
    let ss_tot: f64 = targets.iter().map(|&y| (y as f64 - mean_y).powi(2)).sum();
    let ss_res: f64 = preds
        .iter()
        .zip(targets)
        .map(|(&p, &y)| ((y - p) as f64).powi(2))
        .sum();
    let r2 = if ss_tot > 0.0 {
        1.0 - ss_res / ss_tot
    } else {
        0.0
    };
    RegMetrics {
        mae,
        rmse: mse.sqrt(),
        r2,
    }
}

/// Mean absolute percentage error (Fig. 4's energy-validation metric),
/// in percent. Zero-valued targets are skipped.
pub fn mape(preds: &[f64], targets: &[f64]) -> f64 {
    let mut total = 0.0;
    let mut count = 0usize;
    for (&p, &y) in preds.iter().zip(targets) {
        if y != 0.0 {
            total += ((p - y) / y).abs();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        100.0 * total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_classifier() {
        let m = link_metrics(&[0.9, 0.8, 0.1, 0.2], &[1.0, 1.0, 0.0, 0.0]);
        assert_eq!(m.accuracy, 1.0);
        assert_eq!(m.f1, 1.0);
        assert_eq!(m.auc, 1.0);
    }

    #[test]
    fn random_classifier_auc_half() {
        // All scores identical → AUC must be exactly 0.5 via midranks.
        let m = link_metrics(
            &[0.5; 10],
            &[1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0],
        );
        assert!((m.auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn inverted_classifier_auc_zero() {
        let m = link_metrics(&[0.1, 0.9], &[1.0, 0.0]);
        assert_eq!(m.auc, 0.0);
        assert_eq!(m.accuracy, 0.0);
    }

    #[test]
    fn f1_handles_no_positive_predictions() {
        let m = link_metrics(&[0.1, 0.2], &[1.0, 0.0]);
        assert_eq!(m.f1, 0.0);
    }

    #[test]
    fn auc_with_ties_is_symmetric() {
        let scores = [0.3, 0.3, 0.7, 0.7];
        let labels = [0.0, 1.0, 0.0, 1.0];
        assert!((roc_auc(&scores, &labels) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn regression_metrics_hand_checked() {
        let m = reg_metrics(&[1.0, 2.0, 3.0], &[1.0, 2.0, 5.0]);
        assert!((m.mae - 2.0 / 3.0).abs() < 1e-9);
        assert!((m.rmse - (4.0f64 / 3.0).sqrt()).abs() < 1e-9);
        // ss_tot for targets mean 8/3: (1-8/3)² + (2-8/3)² + (5-8/3)²
        let mean: f64 = 8.0 / 3.0;
        let ss_tot = (1.0 - mean).powi(2) + (2.0 - mean).powi(2) + (5.0 - mean).powi(2);
        assert!((m.r2 - (1.0 - 4.0 / ss_tot)).abs() < 1e-9);
    }

    #[test]
    fn perfect_regression() {
        let m = reg_metrics(&[0.2, 0.4], &[0.2, 0.4]);
        assert_eq!(m.mae, 0.0);
        assert_eq!(m.rmse, 0.0);
        assert_eq!(m.r2, 1.0);
    }

    #[test]
    fn mape_basic() {
        assert!((mape(&[110.0, 90.0], &[100.0, 100.0]) - 10.0).abs() < 1e-9);
        assert_eq!(mape(&[1.0], &[0.0]), 0.0);
    }
}
