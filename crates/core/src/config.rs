//! Model and training configuration (the Rust analogue of the paper's
//! GraphGym config files).

use graph_pe::PeKind;

/// MPNN branch of a GPS layer (Table III rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MpnnKind {
    /// No local message passing.
    None,
    /// GatedGCN with edge features (the paper's default).
    GatedGcn,
}

/// Global-attention branch of a GPS layer (Table III columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttnKind {
    /// No global attention (pure MPNN; Observation 2's strong baseline).
    None,
    /// Exact multi-head softmax attention.
    Transformer,
    /// FAVOR+ linear attention with the given feature count.
    Performer {
        /// Random features per head.
        features: usize,
    },
}

/// Hyperparameters of the CircuitGPS model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelConfig {
    /// Hidden width `d` of node and edge streams.
    pub hidden_dim: usize,
    /// Number of GPS layers `L`.
    pub num_layers: usize,
    /// Attention heads (must divide `hidden_dim`).
    pub heads: usize,
    /// Local MPNN choice.
    pub mpnn: MpnnKind,
    /// Global attention choice.
    pub attn: AttnKind,
    /// Positional encoding.
    pub pe: PeKind,
    /// Width of each PE embedding part (`D0`/`D1` in eq. (1)).
    pub pe_dim: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Parameter-init RNG seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            hidden_dim: 32,
            num_layers: 3,
            heads: 4,
            mpnn: MpnnKind::GatedGcn,
            attn: AttnKind::Performer { features: 32 },
            pe: PeKind::Dspd,
            pe_dim: 8,
            dropout: 0.1,
            seed: 0x6005,
        }
    }
}

impl ModelConfig {
    /// Checks structural constraints, returning a description of the
    /// first violation (used by the checkpoint loader, which must not
    /// panic on a malformed embedded config).
    ///
    /// # Errors
    ///
    /// Returns an error message if `heads` does not divide `hidden_dim`,
    /// the PE parts do not leave room for the node-type embedding, or
    /// there are no GPS layers.
    pub fn check(&self) -> Result<(), String> {
        if self.heads == 0 || !self.hidden_dim.is_multiple_of(self.heads) {
            return Err("heads must divide hidden_dim".into());
        }
        if 2 * self.pe_dim >= self.hidden_dim {
            return Err(format!(
                "2·pe_dim ({}) must leave room for the type embedding in hidden_dim ({})",
                2 * self.pe_dim,
                self.hidden_dim
            ));
        }
        if self.num_layers == 0 {
            return Err("need at least one GPS layer".into());
        }
        Ok(())
    }

    /// Validates structural constraints.
    ///
    /// # Panics
    ///
    /// Panics if `heads` does not divide `hidden_dim`, or the PE parts do
    /// not leave room for the node-type embedding.
    pub fn validate(&self) {
        if let Err(e) = self.check() {
            panic!("{e}");
        }
    }
}

/// Training-loop hyperparameters.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size (samples processed in parallel per step).
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// AdamW weight decay.
    pub weight_decay: f32,
    /// Gradient clip (global L2 norm).
    pub clip: f32,
    /// Warmup steps for the cosine schedule.
    pub warmup: usize,
    /// Shuffling / dropout seed.
    pub seed: u64,
    /// Print progress every n epochs (0 silences).
    pub log_every: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 6,
            batch_size: 32,
            lr: 1e-3,
            weight_decay: 1e-5,
            clip: 1.0,
            warmup: 20,
            seed: 0x7141,
            log_every: 0,
        }
    }
}

/// How to adapt the pre-trained model for a downstream task (Section
/// III-E and Table VI).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinetuneMode {
    /// Train everything from random init (the plain `CircuitGPS` row).
    Scratch,
    /// Freeze encoders and GPS layers; train only the task head.
    HeadOnly,
    /// Continue training all parameters from the pre-trained init.
    All,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_valid() {
        ModelConfig::default().validate();
    }

    #[test]
    #[should_panic(expected = "heads must divide")]
    fn bad_heads_rejected() {
        ModelConfig {
            hidden_dim: 30,
            heads: 4,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "room for the type embedding")]
    fn oversized_pe_rejected() {
        ModelConfig {
            hidden_dim: 16,
            pe_dim: 8,
            heads: 4,
            ..Default::default()
        }
        .validate();
    }
}
