//! Crash-safe file output: a CRC32 implementation for checkpoint
//! integrity footers and an atomic-durable writer used for every
//! checkpoint and metrics-log write.
//!
//! [`write_atomic`] follows the classic recipe — write a temp file *in
//! the destination directory*, `sync_all`, `rename` over the target,
//! then fsync the directory — so a crash at any instant leaves either
//! the complete old file or the complete new file, never a torn mix.
//! The recipe's failure windows are exercised by failpoints
//! (`durable.*`, see `docs/robustness.md`) rather than trusted on faith.
//!
//! [`Crc32`] is the IEEE/zlib polynomial (0xEDB88320, reflected), the
//! same function as `crc32()` in zlib — chosen so a checkpoint footer
//! can be checked with any stock tool. Implemented here because the
//! build is offline and a table-driven CRC is ~20 lines.

use std::fs;
use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Byte-reflected table for the IEEE polynomial, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Incremental CRC32 (IEEE, reflected — the zlib `crc32()` function).
///
/// ```
/// use circuitgps::Crc32;
/// let mut crc = Crc32::new();
/// crc.update(b"123456789");
/// assert_eq!(crc.finish(), 0xCBF4_3926); // the standard check value
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Starts a fresh checksum.
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            let idx = (self.state ^ b as u32) & 0xFF;
            self.state = (self.state >> 8) ^ CRC_TABLE[idx as usize];
        }
    }

    /// Returns the checksum of everything fed so far.
    pub fn finish(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finish()
}

/// Atomically and durably replaces the file at `path` with `bytes`.
///
/// The write goes to a uniquely-named temp file in the *same directory*
/// (rename is only atomic within a filesystem), is flushed to stable
/// storage with `sync_all`, renamed over `path`, and the directory entry
/// is then fsynced (Unix). Any failure removes the temp file and leaves
/// the previous `path` contents untouched, so callers never observe a
/// half-written file — the failure mode this exists to kill is a torn
/// checkpoint that *loads* (see `docs/robustness.md`).
///
/// Failpoints (chaos builds only): `durable.torn_write` truncates the
/// payload while still reporting success — the lying-hardware case the
/// checkpoint CRC footer must catch; `durable.abort_pre_sync`,
/// `durable.abort_pre_rename` and `durable.abort_post_rename` simulate
/// `kill -9` at each stage of the recipe.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed),
    ));

    let mut payload = bytes;
    match cirgps_failpoints::eval("durable.torn_write") {
        Some(cirgps_failpoints::FailAction::Truncate(n)) => {
            payload = &bytes[..(n as usize).min(bytes.len())];
        }
        Some(cirgps_failpoints::FailAction::Error) => {
            return Err(io::Error::other("injected write error"));
        }
        None => {}
    }

    let run = |payload: &[u8]| -> io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(payload)?;
        f.flush()?;
        cirgps_failpoints::eval("durable.abort_pre_sync");
        f.sync_all()?;
        drop(f);
        cirgps_failpoints::eval("durable.abort_pre_rename");
        fs::rename(&tmp, path)?;
        cirgps_failpoints::eval("durable.abort_post_rename");
        sync_dir(&dir);
        Ok(())
    };
    let result = run(payload);
    if result.is_err() {
        // Best-effort cleanup; the original `path` is untouched.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Fsyncs a directory so a just-renamed entry survives power loss.
/// Unix-only (directories cannot be opened for sync elsewhere); other
/// platforms fall back to rename-only atomicity.
#[cfg(unix)]
fn sync_dir(dir: &Path) {
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(not(unix))]
fn sync_dir(_dir: &Path) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cirgps-durable-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_the_standard_check_values() {
        // Check values from the CRC catalogue (CRC-32/ISO-HDLC).
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        // Incremental == one-shot.
        let mut crc = Crc32::new();
        crc.update(b"1234");
        crc.update(b"56789");
        assert_eq!(crc.finish(), 0xCBF4_3926);
    }

    #[test]
    fn crc32_detects_any_single_bit_flip() {
        let data: Vec<u8> = (0u32..512).map(|i| (i * 31 % 251) as u8).collect();
        let good = crc32(&data);
        let mut flipped = data.clone();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), good, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn write_atomic_replaces_contents_and_leaves_no_temp_files() {
        let dir = tmp_dir("replace");
        let path = dir.join("out.bin");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer contents").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"second, longer contents");
        let leftovers: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .filter(|n| n != "out.bin")
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn write_atomic_into_missing_directory_is_a_clean_error() {
        let dir = tmp_dir("missing");
        let path = dir.join("no-such-subdir").join("out.bin");
        assert!(write_atomic(&path, b"x").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_torn_write_truncates_but_reports_success() {
        let dir = tmp_dir("torn");
        let path = dir.join("out.bin");
        write_atomic(&path, b"full contents v1").unwrap();
        cirgps_failpoints::set("durable.torn_write", "truncate:4");
        write_atomic(&path, b"full contents v2").unwrap();
        cirgps_failpoints::clear("durable.torn_write");
        // The lie: success was reported but only 4 bytes landed. This is
        // exactly what the checkpoint CRC footer exists to catch.
        assert_eq!(fs::read(&path).unwrap(), b"full");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_write_error_keeps_the_old_file_and_cleans_up() {
        let dir = tmp_dir("err");
        let path = dir.join("out.bin");
        write_atomic(&path, b"old").unwrap();
        cirgps_failpoints::set("durable.torn_write", "error");
        assert!(write_atomic(&path, b"new").is_err());
        cirgps_failpoints::clear("durable.torn_write");
        assert_eq!(fs::read(&path).unwrap(), b"old");
        assert_eq!(fs::read_dir(&dir).unwrap().count(), 1, "no temp residue");
        fs::remove_dir_all(&dir).unwrap();
    }
}
