//! Tape-free batched inference: block-diagonal attention over packed
//! subgraph batches, `predict_*_batch` entry points and an
//! [`InferenceSession`] with a keyed [`PreparedSample`] cache.
//!
//! The evaluation path used to allocate a fresh autodiff tape per sample
//! and run samples one at a time. This module executes the same forward
//! pass with no tape, no gradient bookkeeping and no per-op `Var`
//! allocation, over a whole batch at once. Attention is masked
//! block-diagonally (per graph) — the same semantics the taped training
//! path uses — so a batch of `B` packed subgraphs pays `Σnᵢ²` score cost
//! instead of `(Σnᵢ)²`; and, because every kernel is shared with the
//! taped forward (see `cirgps-nn`'s `infer` module), batched predictions
//! are **bitwise-equal** to the per-sample [`CircuitGps::predict_link`]
//! / [`CircuitGps::predict_reg`] results. The MPNN branch is gated per
//! graph as well, so even a zero-edge subgraph packed with edge-bearing
//! ones predicts exactly as it does solo.

use std::collections::{HashMap, VecDeque};

use circuit_graph::{CircuitGraph, NodeType, XC_DIM};
use cirgps_nn::infer::{colvec_zip, concat_cols, gather_rows, scatter_add_rows, stable_sigmoid};
use cirgps_nn::{EdgeIndex, ParamStore, Tensor};
use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

use crate::model::{
    assemble_batch, collect_pe_dense, collect_pe_pair, collect_pe_single, AttnBlock, BatchLayout,
    CircuitGps, GpsLayer, PeEncoder,
};
use crate::prepared::PreparedSample;

/// Overwrites the rows of zero-edge blocks in `dst` with the matching
/// rows of `src`: the per-graph MPNN gate. A zero-edge graph packed with
/// edge-bearing ones must combine exactly as it would solo (no MPNN
/// branch), so its rows are restored from the branch-free source — a
/// bitwise copy, which is what keeps packed predictions bitwise-equal to
/// per-sample ones even for edgeless subgraphs.
fn override_edgeless_blocks(
    dst: &mut Tensor,
    src: &Tensor,
    blocks: &[(usize, usize)],
    edge_counts: &[usize],
) {
    for (&(r0, len), &c) in blocks.iter().zip(edge_counts) {
        if c == 0 {
            for r in r0..r0 + len {
                dst.row_slice_mut(r).copy_from_slice(src.row_slice(r));
            }
        }
    }
}

impl GpsLayer {
    /// Tape-free eval-mode forward of one GPS layer over a packed batch.
    /// Mirrors `GpsLayer::forward` op for op (dropout is the identity in
    /// eval mode); attention runs block-diagonally and the MPNN branch
    /// is gated per graph (zero-edge blocks skip it, as they do solo).
    #[allow(clippy::too_many_arguments)] // internal: mirrors the taped signature + two fast-path flags
    fn infer(
        &self,
        params: &ParamStore,
        x: Tensor,
        e: Tensor,
        idx: &EdgeIndex,
        blocks: &[(usize, usize)],
        edge_counts: &[usize],
        typed_edges: Option<(&[usize], &Tensor)>,
        need_edge_out: bool,
    ) -> (Tensor, Tensor) {
        let (x_m, e_out) = match &self.mpnn {
            Some(g) if !idx.is_empty() => {
                let (xm, em) = g.infer_opts(params, &x, &e, idx, typed_edges, need_edge_out);
                e.recycle();
                (Some(xm), em)
            }
            _ => (None, e),
        };
        // Only a *mixed* pack (some blocks with edges, some without)
        // needs the gate; an all-edgeless pack never runs the MPNN.
        let gate = x_m.is_some() && edge_counts.contains(&0);
        let x_a = match (&self.attn, &self.bn_attn) {
            (Some(block), Some(bn)) => {
                let h = match block {
                    AttnBlock::Mha(a) => a.infer_blocks(params, &x, blocks),
                    AttnBlock::Performer(a) => a.infer_blocks(params, &x, blocks),
                };
                // Fused residual + BN (one sweep, bitwise-equal).
                let a = bn.infer_of_sum(params, &h, &x);
                h.recycle();
                Some(a)
            }
            _ => None,
        };
        let combined = match (x_m, x_a) {
            (Some(mut m), Some(a)) => {
                m.add_assign(&a);
                if gate {
                    override_edgeless_blocks(&mut m, &a, blocks, edge_counts);
                }
                a.recycle();
                x.recycle();
                m
            }
            (Some(mut m), None) => {
                if gate {
                    override_edgeless_blocks(&mut m, &x, blocks, edge_counts);
                }
                x.recycle();
                m
            }
            (None, Some(a)) => {
                x.recycle();
                a
            }
            (None, None) => x,
        };
        let h = self.mlp.infer(params, &combined);
        let x_out = self.bn_mlp.infer_of_sum(params, &h, &combined);
        h.recycle();
        combined.recycle();
        (x_out, e_out)
    }
}

impl CircuitGps {
    /// Tape-free encoder + GPS stack over a packed batch (eval mode).
    fn embed_batch_infer(&self, samples: &[&PreparedSample]) -> (Tensor, BatchLayout) {
        let inputs = assemble_batch(samples);
        let total_n = inputs.total_n;
        let params = self.store();

        // Positional encoding block.
        let mut parts: Vec<Tensor> = Vec::with_capacity(3);
        match &self.pe_enc {
            PeEncoder::None => {}
            PeEncoder::Pair { d0, d1 } => {
                let (a, b) = collect_pe_pair(samples, total_n);
                parts.push(d0.infer(params, &a));
                parts.push(d1.infer(params, &b));
            }
            PeEncoder::Single { emb } => {
                let codes = collect_pe_single(samples, total_n);
                parts.push(emb.infer(params, &codes));
            }
            PeEncoder::Dense { lin } => {
                let data = collect_pe_dense(samples, total_n, lin.in_dim());
                let pe = Tensor::from_vec(total_n, lin.in_dim(), data);
                parts.push(lin.infer(params, &pe));
                pe.recycle();
            }
        }
        parts.push(self.node_type_emb.infer(params, &inputs.node_types));
        let mut x = if parts.len() == 1 {
            parts.pop().expect("one part")
        } else {
            let refs: Vec<&Tensor> = parts.iter().collect();
            let cat = concat_cols(&refs);
            drop(refs);
            for p in parts {
                p.recycle();
            }
            cat
        };

        let idx = EdgeIndex::new(inputs.src, inputs.dst);
        let mut e = if inputs.edge_types.is_empty() {
            Tensor::zeros(0, self.cfg.hidden_dim)
        } else {
            self.edge_type_emb.infer(params, &inputs.edge_types)
        };

        let counts: Vec<f32> = samples.iter().map(|s| s.sub.num_nodes() as f32).collect();
        let layout = BatchLayout {
            graph_ids: std::sync::Arc::new(inputs.graph_ids),
            counts,
            anchor_rows: inputs.anchor_rows,
        };
        let blocks = layout.blocks();
        let edge_counts = inputs.edge_counts;
        let n_layers = self.layers.len();
        for (li, layer) in self.layers.iter().enumerate() {
            // The first layer's edge features are a gather of the
            // edge-type table, so its C·e GEMM collapses to the table's
            // few rows; the last layer's edge output is never read.
            let typed = (li == 0 && !inputs.edge_types.is_empty()).then(|| {
                (
                    inputs.edge_types.as_slice(),
                    self.edge_type_emb.table(params),
                )
            });
            let (nx, ne) = layer.infer(
                params,
                x,
                e,
                &idx,
                &blocks,
                &edge_counts,
                typed,
                li + 1 < n_layers,
            );
            x = nx;
            e = ne;
        }
        e.recycle();
        (x, layout)
    }

    /// Per-graph segment mean pooling (tape-free).
    fn segment_mean_infer(&self, x: &Tensor, layout: &BatchLayout) -> Tensor {
        let b = layout.counts.len();
        let sums = scatter_add_rows(x, &layout.graph_ids, b);
        let inv: Vec<f32> = layout.counts.iter().map(|&c| 1.0 / c.max(1.0)).collect();
        let inv = Tensor::col(&inv);
        let out = colvec_zip(&sums, &inv, |v, s| v * s);
        sums.recycle();
        inv.recycle();
        out
    }

    /// Link-existence probabilities for a batch, without building a tape.
    ///
    /// Bitwise-equal to calling [`CircuitGps::predict_link`] on each
    /// sample (see the module docs for the zero-edge caveat).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or a sample's PE does not match the
    /// model's configured [`graph_pe::PeKind`].
    pub fn predict_link_batch(&self, samples: &[&PreparedSample]) -> Vec<f32> {
        self.predict_tiled(samples, |tile| self.predict_link_tile(tile))
    }

    /// Normalized capacitance predictions for a batch, without building a
    /// tape. Bitwise-equal to per-sample [`CircuitGps::predict_reg`].
    ///
    /// # Panics
    ///
    /// Same contracts as [`CircuitGps::predict_link_batch`].
    pub fn predict_reg_batch(&self, samples: &[&PreparedSample]) -> Vec<f32> {
        self.predict_tiled(samples, |tile| self.predict_reg_tile(tile))
    }

    /// Splits a batch into cache-sized tiles and concatenates per-tile
    /// predictions. Every graph's rows are computed independently
    /// (block-diagonal attention, per-graph pooling, eval-mode batch
    /// norm), so tiling changes nothing about the outputs — it only
    /// keeps each tile's edge/node streams L2-resident, which is worth
    /// ~15% per sample at batch 32 versus running one huge tile.
    fn predict_tiled(
        &self,
        samples: &[&PreparedSample],
        predict: impl Fn(&[&PreparedSample]) -> Vec<f32>,
    ) -> Vec<f32> {
        assert!(!samples.is_empty(), "predict needs at least one sample");
        // ~0.6 MB of f32 edge features per tile: several E×d tensors are
        // live at once per layer, and keeping the whole set inside L2 is
        // measurably faster than larger tiles on the bench workload.
        const TILE_FLOAT_BUDGET: usize = 160 * 1024;
        let d = self.cfg.hidden_dim;
        let mut out = Vec::with_capacity(samples.len());
        let mut start = 0usize;
        while start < samples.len() {
            let mut end = start;
            let mut floats = 0usize;
            while end < samples.len() {
                let s = samples[end];
                floats += (s.sub.src.len() + s.sub.num_nodes()) * d;
                if end > start && floats > TILE_FLOAT_BUDGET {
                    break;
                }
                end += 1;
            }
            out.extend(predict(&samples[start..end]));
            start = end;
        }
        out
    }

    fn predict_link_tile(&self, samples: &[&PreparedSample]) -> Vec<f32> {
        let (xl, layout) = self.embed_batch_infer(samples);
        let pooled = self.segment_mean_infer(&xl, &layout);
        xl.recycle();
        let logits = self.link_head.infer(self.store(), &pooled);
        pooled.recycle();
        let probs = logits
            .as_slice()
            .iter()
            .map(|&z| 1.0 / (1.0 + (-z).exp()))
            .collect();
        logits.recycle();
        probs
    }

    fn predict_reg_tile(&self, samples: &[&PreparedSample]) -> Vec<f32> {
        let (xl, layout) = self.embed_batch_infer(samples);
        let total_n: usize = samples.iter().map(|s| s.sub.num_nodes()).sum();
        let params = self.store();

        let mut xc_data = cirgps_nn::pool::take_capacity(total_n * XC_DIM);
        for s in samples {
            xc_data.extend_from_slice(&s.xc_norm);
        }
        let xc = Tensor::from_vec(total_n, XC_DIM, xc_data);

        // Group global node indices by type (same traversal as the taped
        // path in `reg_outputs_batch`).
        let mut net_idx = Vec::new();
        let mut dev_idx = Vec::new();
        let mut pin_idx = Vec::new();
        let mut pin_codes = Vec::new();
        let mut base = 0usize;
        for s in samples {
            for (i, &t) in s.sub.node_types.iter().enumerate() {
                let gidx = base + i;
                match t {
                    t if t == NodeType::Net.code() => net_idx.push(gidx),
                    t if t == NodeType::Device.code() => dev_idx.push(gidx),
                    _ => {
                        pin_idx.push(gidx);
                        pin_codes.push(s.pin_codes[i]);
                    }
                }
            }
            base += s.sub.num_nodes();
        }

        // C: per-type projection scattered back to node order (eq. (6)).
        let mut c = Tensor::zeros(total_n, self.cfg.hidden_dim);
        for (idx, proj) in [
            (&net_idx, &self.reg_head.net_proj),
            (&dev_idx, &self.reg_head.dev_proj),
        ] {
            if idx.is_empty() {
                continue;
            }
            let rows = gather_rows(&xc, idx);
            let proj_rows = proj.infer(params, &rows);
            rows.recycle();
            let scattered = scatter_add_rows(&proj_rows, idx, total_n);
            proj_rows.recycle();
            c.add_assign(&scattered);
            scattered.recycle();
        }
        if !pin_idx.is_empty() {
            let emb = self.reg_head.pin_emb.infer(params, &pin_codes);
            let scattered = scatter_add_rows(&emb, &pin_idx, total_n);
            emb.recycle();
            c.add_assign(&scattered);
            scattered.recycle();
        }
        xc.recycle();

        // XH = Pool(XL + C) plus the anchor skip-connection (eq. (7)).
        c.add_assign(&xl);
        xl.recycle();
        let sum = c;
        let pooled = self.segment_mean_infer(&sum, &layout);
        let mut readout = gather_rows(&sum, &layout.anchor_rows);
        readout.add_assign(&pooled);
        sum.recycle();
        pooled.recycle();
        let out = self.reg_head.mlp.infer(params, &readout);
        readout.recycle();
        let preds = out.as_slice().iter().map(|&v| stable_sigmoid(v)).collect();
        out.recycle();
        preds
    }
}

/// How an [`InferenceSession`] refers to its model: owning it (the
/// classic single-session setup) or borrowing one shared, read-only
/// model (a serving daemon runs one session per scheduler worker, all
/// against the same weights — see `cirgps-serve`).
#[derive(Debug)]
enum ModelRef<'g> {
    Owned(Box<CircuitGps>),
    Shared(&'g CircuitGps),
}

impl ModelRef<'_> {
    fn get(&self) -> &CircuitGps {
        match self {
            ModelRef::Owned(m) => m,
            ModelRef::Shared(m) => m,
        }
    }
}

/// One prediction request against an [`InferenceSession`], used by the
/// heterogeneous batch entry point
/// [`InferenceSession::predict_batch`]. The three variants map onto the
/// session's task-specific methods; a mixed slice is routed per variant
/// while preserving the caller's ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Query {
    /// Link-existence probability for the candidate pair `(a, b)`.
    Link(u32, u32),
    /// Normalized coupling-capacitance prediction for the pair `(a, b)`.
    Coupling(u32, u32),
    /// Normalized ground-capacitance prediction for one node.
    Ground(u32),
}

impl Query {
    /// Cache key for this query (`(n, n)` for ground queries, matching
    /// [`InferenceSession::predict_ground`]).
    fn key(self) -> (u32, u32) {
        match self {
            Query::Link(a, b) | Query::Coupling(a, b) => (a, b),
            Query::Ground(n) => (n, n),
        }
    }

    /// Whether this query runs through the regression head.
    fn is_reg(self) -> bool {
        !matches!(self, Query::Link(..))
    }
}

/// A long-lived inference engine over one design: the model (owned or
/// shared), the fitted [`XcNormalizer`], a subgraph sampler and a
/// FIFO-bounded cache of [`PreparedSample`]s keyed by query, so repeated
/// queries skip subgraph extraction and PE recomputation entirely.
///
/// # Examples
///
/// ```no_run
/// # use circuitgps::{CircuitGps, InferenceSession, ModelConfig};
/// # use subgraph_sample::{SamplerConfig, XcNormalizer};
/// # fn demo(graph: &circuit_graph::CircuitGraph) {
/// let model = CircuitGps::new(ModelConfig::default());
/// let xcn = XcNormalizer::fit(&[graph]);
/// let cfg = SamplerConfig { hops: 1, max_nodes: 2048 };
/// let mut session = InferenceSession::new(model, xcn, graph, cfg).with_batch_size(32);
/// let probs = session.predict_links(&[(0, 5), (2, 7)]);
/// # let _ = probs;
/// # }
/// ```
#[derive(Debug)]
pub struct InferenceSession<'g> {
    model: ModelRef<'g>,
    xcn: XcNormalizer,
    graph: &'g CircuitGraph,
    /// Enclosing-subgraph sampler for pair (link/coupling) queries.
    sampler: SubgraphSampler<'g>,
    /// Node-subgraph sampler for ground-capacitance queries — separate
    /// because the paper uses 1-hop subgraphs for links but 2-hop for
    /// node tasks.
    node_sampler: SubgraphSampler<'g>,
    cache: HashMap<(u32, u32), PreparedSample>,
    fifo: VecDeque<(u32, u32)>,
    cache_capacity: usize,
    batch_size: usize,
    hits: u64,
    misses: u64,
}

impl<'g> InferenceSession<'g> {
    /// Creates a session over `graph` with default batch size 32 and a
    /// cache capacity of 65 536 prepared samples. `sampler_cfg` drives
    /// the pair queries; node (ground-capacitance) queries default to
    /// 2-hop subgraphs with the same node cap, matching the training
    /// pipeline's convention (override with
    /// [`InferenceSession::with_node_sampler_config`]).
    pub fn new(
        model: CircuitGps,
        xcn: XcNormalizer,
        graph: &'g CircuitGraph,
        sampler_cfg: SamplerConfig,
    ) -> Self {
        Self::with_model_ref(ModelRef::Owned(Box::new(model)), xcn, graph, sampler_cfg)
    }

    /// Creates a session that *borrows* a shared, read-only model instead
    /// of owning one. Defaults match [`InferenceSession::new`].
    ///
    /// This is the serving-daemon constructor: `CircuitGps` forward
    /// passes take `&self`, so one model can back many concurrent
    /// sessions (one per scheduler worker, each with its own sampler
    /// scratch and prepared-sample cache) without duplicating weights.
    /// The session is `Send`, so it can be handed to a worker thread.
    pub fn shared(
        model: &'g CircuitGps,
        xcn: XcNormalizer,
        graph: &'g CircuitGraph,
        sampler_cfg: SamplerConfig,
    ) -> Self {
        Self::with_model_ref(ModelRef::Shared(model), xcn, graph, sampler_cfg)
    }

    fn with_model_ref(
        model: ModelRef<'g>,
        xcn: XcNormalizer,
        graph: &'g CircuitGraph,
        sampler_cfg: SamplerConfig,
    ) -> Self {
        let node_cfg = SamplerConfig {
            hops: 2,
            ..sampler_cfg
        };
        InferenceSession {
            model,
            xcn,
            graph,
            sampler: SubgraphSampler::new(graph, sampler_cfg),
            node_sampler: SubgraphSampler::new(graph, node_cfg),
            cache: HashMap::new(),
            fifo: VecDeque::new(),
            cache_capacity: 65_536,
            batch_size: 32,
            hits: 0,
            misses: 0,
        }
    }

    /// Overrides the sampler configuration used by
    /// [`InferenceSession::predict_ground`]. Clears the cache: cached
    /// node samples would otherwise reflect the old neighborhoods.
    pub fn with_node_sampler_config(mut self, cfg: SamplerConfig) -> Self {
        self.node_sampler = SubgraphSampler::new(self.graph, cfg);
        self.clear_cache();
        self
    }

    /// Sets the batch size used by the `predict_*` methods.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n` exceeds the cache capacity (the cache
    /// must always be able to hold one full batch).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        assert!(
            n <= self.cache_capacity,
            "batch size {n} exceeds cache capacity {}",
            self.cache_capacity
        );
        self.batch_size = n;
        self
    }

    /// Bounds the prepared-sample cache (FIFO eviction).
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the batch size.
    pub fn with_cache_capacity(mut self, n: usize) -> Self {
        assert!(n >= self.batch_size, "cache must hold at least one batch");
        self.cache_capacity = n;
        self
    }

    /// The wrapped model (owned or shared).
    pub fn model(&self) -> &CircuitGps {
        self.model.get()
    }

    /// `(hits, misses)` of the prepared-sample cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached prepared samples.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Drops every cached sample (e.g. after swapping model weights).
    pub fn clear_cache(&mut self) {
        self.cache.clear();
        self.fifo.clear();
    }

    /// Link-existence probability for each `(a, b)` candidate pair.
    ///
    /// # Panics
    ///
    /// Panics if a pair has `a == b` (use
    /// [`InferenceSession::predict_ground`] for node queries).
    pub fn predict_links(&mut self, pairs: &[(u32, u32)]) -> Vec<f32> {
        assert!(
            pairs.iter().all(|&(a, b)| a != b),
            "link queries need two distinct nodes"
        );
        self.predict_keys(pairs, false)
    }

    /// Normalized coupling-capacitance prediction for each candidate pair.
    ///
    /// # Panics
    ///
    /// Panics if a pair has `a == b`.
    pub fn predict_couplings(&mut self, pairs: &[(u32, u32)]) -> Vec<f32> {
        assert!(
            pairs.iter().all(|&(a, b)| a != b),
            "coupling queries need two distinct nodes"
        );
        self.predict_keys(pairs, true)
    }

    /// Normalized ground-capacitance prediction for each node (2-hop node
    /// subgraphs, cached under the key `(n, n)`).
    pub fn predict_ground(&mut self, nodes: &[u32]) -> Vec<f32> {
        let keys: Vec<(u32, u32)> = nodes.iter().map(|&n| (n, n)).collect();
        self.predict_keys(&keys, true)
    }

    /// Predictions for a heterogeneous batch of queries, in query order.
    ///
    /// Link and regression (coupling/ground) queries run through
    /// different task heads, so they are split into separate model
    /// batches internally — a mixed slice is never packed into one
    /// forward pass — and the results are re-interleaved to match
    /// `queries`. This is the entry point a serving scheduler uses when
    /// a drained batch is not known to be task-pure.
    ///
    /// # Panics
    ///
    /// Panics if a pair query has `a == b` (use [`Query::Ground`] for
    /// node queries).
    pub fn predict_batch(&mut self, queries: &[Query]) -> Vec<f32> {
        assert!(
            queries.iter().all(|q| match *q {
                Query::Link(a, b) | Query::Coupling(a, b) => a != b,
                Query::Ground(_) => true,
            }),
            "pair queries need two distinct nodes"
        );
        let mut out = vec![0.0f32; queries.len()];
        for reg in [false, true] {
            let (pos, keys): (Vec<usize>, Vec<(u32, u32)>) = queries
                .iter()
                .enumerate()
                .filter(|(_, q)| q.is_reg() == reg)
                .map(|(i, q)| (i, q.key()))
                .unzip();
            if keys.is_empty() {
                continue;
            }
            for (i, p) in pos.into_iter().zip(self.predict_keys(&keys, reg)) {
                out[i] = p;
            }
        }
        out
    }

    fn predict_keys(&mut self, keys: &[(u32, u32)], reg: bool) -> Vec<f32> {
        let mut out = Vec::with_capacity(keys.len());
        for chunk in keys.chunks(self.batch_size) {
            self.ensure_cached(chunk);
            let batch: Vec<&PreparedSample> = chunk.iter().map(|k| &self.cache[k]).collect();
            let model = self.model.get();
            let preds = if reg {
                model.predict_reg_batch(&batch)
            } else {
                model.predict_link_batch(&batch)
            };
            out.extend(preds);
        }
        out
    }

    /// Prepares (or re-uses) the samples for `keys`, then evicts the
    /// oldest entries *not* needed by the current chunk until the cache
    /// fits its capacity again.
    fn ensure_cached(&mut self, keys: &[(u32, u32)]) {
        for &key in keys {
            if self.cache.contains_key(&key) {
                self.hits += 1;
                continue;
            }
            self.misses += 1;
            let (a, b) = key;
            let sub = if a == b {
                self.node_sampler.node_subgraph(a)
            } else {
                self.sampler.enclosing_subgraph(a, b)
            };
            let prepared = PreparedSample::new(sub, self.model.get().cfg.pe, &self.xcn, 1.0, 0.0);
            self.cache.insert(key, prepared);
            self.fifo.push_back(key);
        }
        if self.cache.len() > self.cache_capacity {
            let needed: std::collections::HashSet<(u32, u32)> = keys.iter().copied().collect();
            let mut retained = VecDeque::with_capacity(self.fifo.len());
            while let Some(old) = self.fifo.pop_front() {
                if self.cache.len() <= self.cache_capacity || needed.contains(&old) {
                    retained.push_back(old);
                } else {
                    self.cache.remove(&old);
                }
            }
            self.fifo = retained;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttnKind, ModelConfig, MpnnKind};
    use circuit_graph::{Edge, EdgeType, GraphBuilder};
    use graph_pe::PeKind;

    /// Builds a graph with two pin clusters and a connecting path, plus
    /// the candidate links used to derive ≥ 17 distinct samples.
    fn toy_graph_and_links() -> (CircuitGraph, Vec<(u32, u32)>) {
        let mut b = GraphBuilder::new();
        let cluster = |b: &mut GraphBuilder, tag: &str| -> Vec<u32> {
            let hub = b.add_node(NodeType::Net, &format!("{tag}hub"));
            let mut out = vec![hub];
            for i in 0..6 {
                let p = b.add_node(NodeType::Pin, &format!("{tag}p{i}"));
                b.set_xc(p, 0, (i % 3) as f32);
                b.add_edge(hub, p, EdgeType::NetPin);
                out.push(p);
            }
            out
        };
        let c1 = cluster(&mut b, "a");
        let c2 = cluster(&mut b, "b");
        let mut prev = c1[0];
        for i in 0..4 {
            let mid = b.add_node(NodeType::Device, &format!("m{i}"));
            b.add_edge(prev, mid, EdgeType::DevicePin);
            prev = mid;
        }
        b.add_edge(prev, c2[0], EdgeType::DevicePin);
        let g = b.build();

        let mut links = Vec::new();
        for i in 1..5 {
            links.push((c1[i], c1[i + 1]));
            links.push((c2[i], c2[i + 1]));
            links.push((c1[i], c2[i]));
            links.push((c1[i + 1], c2[i]));
            links.push((c1[1], c2[i + 1]));
        }
        let injected: Vec<Edge> = links
            .iter()
            .map(|&(a, b2)| Edge {
                a,
                b: b2,
                ty: EdgeType::CouplingPinPin,
            })
            .collect();
        (g.with_injected_links(&injected), links)
    }

    fn toy_samples(n: usize) -> Vec<PreparedSample> {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let mut sampler = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
        );
        links
            .iter()
            .take(n)
            .map(|&(a, b)| {
                let sub = sampler.enclosing_subgraph(a, b);
                PreparedSample::new(sub, PeKind::Dspd, &xcn, 1.0, 0.4)
            })
            .collect()
    }

    fn model_with(attn: AttnKind) -> CircuitGps {
        CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            mpnn: MpnnKind::GatedGcn,
            attn,
            ..Default::default()
        })
    }

    fn attn_kinds() -> [AttnKind; 2] {
        [AttnKind::Transformer, AttnKind::Performer { features: 8 }]
    }

    #[test]
    fn batched_link_predictions_are_bitwise_equal_to_per_sample() {
        let samples = toy_samples(17);
        assert_eq!(samples.len(), 17, "toy dataset too small");
        for attn in attn_kinds() {
            let model = model_with(attn);
            let per_sample: Vec<f32> = samples.iter().map(|s| model.predict_link(s)).collect();
            for bs in [1usize, 3, 17] {
                for (ci, chunk) in samples.chunks(bs).enumerate() {
                    let refs: Vec<&PreparedSample> = chunk.iter().collect();
                    let batched = model.predict_link_batch(&refs);
                    for (i, (b, s)) in batched
                        .iter()
                        .zip(&per_sample[ci * bs..ci * bs + chunk.len()])
                        .enumerate()
                    {
                        assert_eq!(
                            b.to_bits(),
                            s.to_bits(),
                            "{attn:?} bs={bs} chunk={ci} sample={i}: {b} vs {s}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn batched_reg_predictions_are_bitwise_equal_to_per_sample() {
        let samples = toy_samples(17);
        for attn in attn_kinds() {
            let model = model_with(attn);
            let per_sample: Vec<f32> = samples.iter().map(|s| model.predict_reg(s)).collect();
            for bs in [1usize, 3, 17] {
                let mut batched = Vec::new();
                for chunk in samples.chunks(bs) {
                    let refs: Vec<&PreparedSample> = chunk.iter().collect();
                    batched.extend(model.predict_reg_batch(&refs));
                }
                for (i, (b, s)) in batched.iter().zip(&per_sample).enumerate() {
                    assert_eq!(
                        b.to_bits(),
                        s.to_bits(),
                        "{attn:?} bs={bs} sample={i}: {b} vs {s}"
                    );
                }
            }
        }
    }

    #[test]
    fn batched_predictions_match_without_mpnn() {
        let samples = toy_samples(5);
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 1,
            mpnn: MpnnKind::None,
            attn: AttnKind::Transformer,
            ..Default::default()
        });
        let refs: Vec<&PreparedSample> = samples.iter().collect();
        let batched = model.predict_link_batch(&refs);
        for (b, s) in batched.iter().zip(&samples) {
            assert_eq!(b.to_bits(), model.predict_link(s).to_bits());
        }
    }

    #[test]
    fn zero_edge_subgraph_packed_matches_solo_bitwise() {
        // PR 2 caveat, resolved: a zero-edge subgraph packed with
        // edge-bearing ones used to take the MPNN branch unlike its solo
        // prediction. The per-graph MPNN gate restores solo semantics,
        // so packed predictions are bitwise-equal again.
        let mut b = GraphBuilder::new();
        let hub = b.add_node(NodeType::Net, "hub");
        for i in 0..5 {
            let p = b.add_node(NodeType::Pin, &format!("p{i}"));
            b.set_xc(p, 0, i as f32);
            b.add_edge(hub, p, EdgeType::NetPin);
        }
        let iso = b.add_node(NodeType::Net, "iso");
        let g = b.build();
        let xcn = XcNormalizer::fit(&[&g]);
        let mut pair_sampler = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
        );
        let mut node_sampler = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 64,
            },
        );
        let samples: Vec<PreparedSample> = vec![
            PreparedSample::new(
                pair_sampler.enclosing_subgraph(hub, 1),
                PeKind::Dspd,
                &xcn,
                1.0,
                0.3,
            ),
            // The isolated node's 2-hop subgraph has zero edges.
            PreparedSample::new(
                node_sampler.node_subgraph(iso),
                PeKind::Dspd,
                &xcn,
                0.0,
                0.5,
            ),
            PreparedSample::new(
                pair_sampler.enclosing_subgraph(2, 3),
                PeKind::Dspd,
                &xcn,
                1.0,
                0.7,
            ),
        ];
        assert_eq!(samples[1].sub.src.len(), 0, "expected a zero-edge subgraph");

        for attn in [
            AttnKind::Transformer,
            AttnKind::Performer { features: 8 },
            AttnKind::None,
        ] {
            let model = CircuitGps::new(ModelConfig {
                hidden_dim: 16,
                pe_dim: 4,
                heads: 2,
                num_layers: 2,
                mpnn: MpnnKind::GatedGcn,
                attn,
                ..Default::default()
            });
            let refs: Vec<&PreparedSample> = samples.iter().collect();
            for (solo, packed) in samples
                .iter()
                .map(|s| model.predict_link(s))
                .zip(model.predict_link_batch(&refs))
            {
                assert_eq!(
                    packed.to_bits(),
                    solo.to_bits(),
                    "{attn:?} link: {packed} vs {solo}"
                );
            }
            for (solo, packed) in samples
                .iter()
                .map(|s| model.predict_reg(s))
                .zip(model.predict_reg_batch(&refs))
            {
                assert_eq!(
                    packed.to_bits(),
                    solo.to_bits(),
                    "{attn:?} reg: {packed} vs {solo}"
                );
            }
        }
    }

    #[test]
    fn session_caches_and_matches_direct_prediction() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let cfg = SamplerConfig {
            hops: 1,
            max_nodes: 64,
        };
        let model = model_with(AttnKind::Performer { features: 8 });
        let direct = {
            let mut sampler = SubgraphSampler::new(&g, cfg);
            let prepared: Vec<PreparedSample> = links
                .iter()
                .map(|&(a, b)| {
                    let sub = sampler.enclosing_subgraph(a, b);
                    PreparedSample::new(sub, model.cfg.pe, &xcn, 1.0, 0.0)
                })
                .collect();
            prepared
                .iter()
                .map(|s| model.predict_link(s))
                .collect::<Vec<f32>>()
        };

        let mut session = InferenceSession::new(model, xcn, &g, cfg).with_batch_size(4);
        let first = session.predict_links(&links);
        for (a, b) in first.iter().zip(&direct) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let (h0, m0) = session.cache_stats();
        assert_eq!(h0, 0);
        assert_eq!(m0, links.len() as u64);

        // Second pass: every sample comes from the cache, same outputs.
        let second = session.predict_links(&links);
        assert_eq!(first, second);
        let (h1, m1) = session.cache_stats();
        assert_eq!(h1, links.len() as u64);
        assert_eq!(m1, m0);
    }

    #[test]
    fn shared_sessions_match_owned_and_are_send() {
        fn assert_send<T: Send>(_: &T) {}

        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let cfg = SamplerConfig {
            hops: 1,
            max_nodes: 64,
        };
        let model = model_with(AttnKind::Transformer);
        let owned = {
            let m2 = {
                let mut bytes = Vec::new();
                model.save(&mut bytes).unwrap();
                let mut m = model_with(AttnKind::Transformer);
                m.load(&bytes[..]).unwrap();
                m
            };
            let mut session = InferenceSession::new(m2, xcn.clone(), &g, cfg);
            session.predict_links(&links)
        };

        // Two concurrent shared sessions over one model, as a serving
        // daemon's scheduler workers would run them.
        let halves: Vec<Vec<f32>> = std::thread::scope(|s| {
            let handles: Vec<_> = links
                .chunks(links.len() / 2)
                .map(|chunk| {
                    let mut session = InferenceSession::shared(&model, xcn.clone(), &g, cfg);
                    assert_send(&session);
                    s.spawn(move || session.predict_links(chunk))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let shared: Vec<f32> = halves.into_iter().flatten().collect();
        assert_eq!(owned.len(), shared.len());
        for (a, b) in owned.iter().zip(&shared) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn heterogeneous_predict_batch_matches_task_specific_calls() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let cfg = SamplerConfig {
            hops: 1,
            max_nodes: 64,
        };
        let model = model_with(AttnKind::Performer { features: 8 });
        let mut session = InferenceSession::shared(&model, xcn.clone(), &g, cfg).with_batch_size(4);
        let want_links = session.predict_links(&links[..4]);
        let want_caps = session.predict_couplings(&links[4..8]);
        let want_ground = session.predict_ground(&[links[0].0, links[1].0]);

        // Interleave the three kinds; results must come back in order.
        let mut session2 = InferenceSession::shared(&model, xcn, &g, cfg).with_batch_size(4);
        let queries: Vec<Query> = vec![
            Query::Link(links[0].0, links[0].1),
            Query::Coupling(links[4].0, links[4].1),
            Query::Ground(links[0].0),
            Query::Link(links[1].0, links[1].1),
            Query::Coupling(links[5].0, links[5].1),
            Query::Link(links[2].0, links[2].1),
            Query::Ground(links[1].0),
            Query::Coupling(links[6].0, links[6].1),
            Query::Link(links[3].0, links[3].1),
            Query::Coupling(links[7].0, links[7].1),
        ];
        let got = session2.predict_batch(&queries);
        let want = [
            want_links[0],
            want_caps[0],
            want_ground[0],
            want_links[1],
            want_caps[1],
            want_links[2],
            want_ground[1],
            want_caps[2],
            want_links[3],
            want_caps[3],
        ];
        assert_eq!(got.len(), want.len());
        for (i, (a, b)) in got.iter().zip(&want).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "query {i}: {a} vs {b}");
        }
    }

    #[test]
    fn session_cache_eviction_is_bounded_and_keeps_current_batch() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let cfg = SamplerConfig {
            hops: 1,
            max_nodes: 64,
        };
        let model = model_with(AttnKind::Transformer);
        let mut session = InferenceSession::new(model, xcn, &g, cfg)
            .with_batch_size(4)
            .with_cache_capacity(4);
        let _ = session.predict_links(&links);
        assert!(session.cache_len() <= 4, "cache exceeded its capacity");

        // Ground (node) predictions share the cache under (n, n) keys.
        let regs = session.predict_ground(&[links[0].0, links[1].0]);
        assert_eq!(regs.len(), 2);
        assert!(regs
            .iter()
            .all(|v| v.is_finite() && (0.0..=1.0).contains(v)));
    }
}
