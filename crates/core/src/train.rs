//! Training loops: link-prediction pre-training, regression fine-tuning
//! (scratch / head-only / all, Section III-E) and evaluation.
//!
//! Minibatches are data-parallel: each sample's forward/backward runs on a
//! rayon worker with its own tape; per-worker gradient stores are merged,
//! averaged, clipped and applied with AdamW under a cosine schedule.
//!
//! Long runs are resumable: [`train_resumable`] reports a serializable
//! [`TrainState`] (epoch counter, optimizer moments, RNG state) at every
//! epoch boundary and honors a stop flag between epochs, so an
//! interrupted run restored from its last snapshot finishes with the
//! **same final metrics** as the uninterrupted run (same seed, same
//! machine). Epoch boundaries are the only stop/snapshot points because
//! mid-epoch model/optimizer/RNG state is not a consistent triple.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};

use cirgps_nn::{Adam, CosineSchedule, GradStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::checkpoint::{read_u32, read_u64, write_u32, write_u64};
use crate::config::{FinetuneMode, TrainConfig};
use crate::metrics::{link_metrics, reg_metrics, LinkMetrics, RegMetrics};
use crate::model::CircuitGps;
use crate::prepared::PreparedSample;

/// Which loss the loop optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Task {
    /// Binary link prediction (BCE) — the pre-training task.
    #[default]
    LinkPrediction,
    /// Capacitance regression (L1) — the downstream task.
    Regression,
}

/// Training failure modes.
///
/// The loop aborts *before* applying the diverged step's gradients and
/// before the epoch's `progress`/`epoch_end` callbacks run, so the model
/// holds the last finite weights and the caller's most recent snapshot
/// (epoch `epoch - 1` or earlier) is still a valid resume point.
#[derive(Debug, Clone, PartialEq)]
pub enum TrainError {
    /// A minibatch produced a NaN or infinite loss — the run has
    /// diverged (bad data, too-high learning rate, or numeric blow-up)
    /// and continuing would only poison the weights.
    NonFiniteLoss {
        /// 1-based epoch in which the loss diverged.
        epoch: usize,
        /// Global optimizer step index at the divergence (0-based; the
        /// step was *not* applied).
        step: usize,
        /// The offending batch-mean loss.
        loss: f64,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::NonFiniteLoss { epoch, step, loss } => write!(
                f,
                "non-finite loss {loss} at epoch {epoch} step {step}: training diverged \
                 (the last epoch-boundary snapshot is still valid)"
            ),
        }
    }
}

impl std::error::Error for TrainError {}

/// Per-epoch training record.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds spent in training.
    pub seconds: f64,
}

/// What the training loop reports to a progress observer after each
/// epoch (see [`train_with_progress`]).
#[derive(Debug, Clone, Copy)]
pub struct EpochProgress {
    /// 1-based epoch that just finished.
    pub epoch: usize,
    /// Total epochs this run will perform.
    pub epochs: usize,
    /// Mean training loss over the finished epoch.
    pub loss: f32,
    /// Learning rate of the epoch's last optimizer step.
    pub lr: f32,
    /// Wall-clock seconds since training started.
    pub seconds: f64,
}

/// Serializable snapshot of everything the training loop mutates between
/// epochs, captured at an epoch boundary. Persisting this next to the
/// model weights (checkpoint section
/// [`crate::TRAIN_STATE_SECTION`]) makes an interrupted run resumable
/// with bitwise-identical continuation: the RNG continues its stream,
/// the optimizer keeps its moment estimates and step counter, and the
/// cosine schedule's step index is recomputed from `epochs_done`.
///
/// The config fields (`seed`, `epochs`, …) are recorded so a resume with
/// *different* training flags is rejected by [`TrainState::check_resume`]
/// instead of silently diverging.
#[derive(Debug, Clone)]
pub struct TrainState {
    /// Which loss the interrupted run was optimizing.
    pub task: Task,
    /// `TrainConfig::seed` of the run.
    pub seed: u64,
    /// `TrainConfig::epochs` of the run (the cosine schedule's horizon —
    /// resuming with a different total would silently change every
    /// remaining learning rate).
    pub epochs: usize,
    /// `TrainConfig::batch_size` of the run.
    pub batch_size: usize,
    /// `TrainConfig::lr` of the run.
    pub lr: f32,
    /// `TrainConfig::weight_decay` of the run.
    pub weight_decay: f32,
    /// Completed epochs (the resumed run starts at this epoch index).
    pub epochs_done: usize,
    /// Mean training loss of every completed epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds accumulated over all partial runs.
    pub seconds: f64,
    /// xoshiro256++ state of the shuffle RNG at the epoch boundary.
    pub rng_state: [u64; 4],
    /// Serialized optimizer state ([`Adam::save_state`] payload).
    pub opt: Vec<u8>,
}

const TRAIN_STATE_VERSION: u32 = 1;
const TASK_LINK: u8 = 0;
const TASK_REGRESSION: u8 = 1;

impl TrainState {
    /// Serializes the state for embedding in a checkpoint section.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(96 + self.epoch_losses.len() * 4 + self.opt.len());
        // Writing to a Vec cannot fail.
        write_u32(&mut b, TRAIN_STATE_VERSION).unwrap();
        b.push(match self.task {
            Task::LinkPrediction => TASK_LINK,
            Task::Regression => TASK_REGRESSION,
        });
        write_u64(&mut b, self.seed).unwrap();
        write_u64(&mut b, self.epochs as u64).unwrap();
        write_u64(&mut b, self.batch_size as u64).unwrap();
        b.extend_from_slice(&self.lr.to_le_bytes());
        b.extend_from_slice(&self.weight_decay.to_le_bytes());
        write_u64(&mut b, self.epochs_done as u64).unwrap();
        b.extend_from_slice(&self.seconds.to_le_bytes());
        write_u64(&mut b, self.epoch_losses.len() as u64).unwrap();
        for &loss in &self.epoch_losses {
            b.extend_from_slice(&loss.to_le_bytes());
        }
        for &s in &self.rng_state {
            write_u64(&mut b, s).unwrap();
        }
        write_u64(&mut b, self.opt.len() as u64).unwrap();
        b.extend_from_slice(&self.opt);
        b
    }

    /// Decodes a [`TrainState::to_bytes`] payload, validating structure
    /// (including a trial parse of the embedded optimizer state) so a
    /// successful decode is guaranteed to resume cleanly.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field. (In practice the
    /// containing checkpoint's CRC already rejects corruption; this
    /// guards against logic errors and version skew.)
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, String> {
        let r = &mut bytes;
        let io = |e: std::io::Error| format!("training state truncated: {e}");
        let version = read_u32(r).map_err(io)?;
        if version != TRAIN_STATE_VERSION {
            return Err(format!(
                "training state version {version} unsupported (expected {TRAIN_STATE_VERSION})"
            ));
        }
        let mut tag = [0u8; 1];
        std::io::Read::read_exact(r, &mut tag).map_err(io)?;
        let task = match tag[0] {
            TASK_LINK => Task::LinkPrediction,
            TASK_REGRESSION => Task::Regression,
            t => return Err(format!("unknown task tag {t}")),
        };
        let seed = read_u64(r).map_err(io)?;
        let epochs = read_u64(r).map_err(io)? as usize;
        let batch_size = read_u64(r).map_err(io)? as usize;
        let mut f4 = [0u8; 4];
        std::io::Read::read_exact(r, &mut f4).map_err(io)?;
        let lr = f32::from_le_bytes(f4);
        std::io::Read::read_exact(r, &mut f4).map_err(io)?;
        let weight_decay = f32::from_le_bytes(f4);
        let epochs_done = read_u64(r).map_err(io)? as usize;
        let mut f8 = [0u8; 8];
        std::io::Read::read_exact(r, &mut f8).map_err(io)?;
        let seconds = f64::from_le_bytes(f8);
        let n_losses = read_u64(r).map_err(io)? as usize;
        if n_losses > 1 << 24 {
            return Err(format!("unreasonable loss count {n_losses}"));
        }
        let mut epoch_losses = Vec::with_capacity(n_losses.min(1 << 16));
        for _ in 0..n_losses {
            std::io::Read::read_exact(r, &mut f4).map_err(io)?;
            epoch_losses.push(f32::from_le_bytes(f4));
        }
        let mut rng_state = [0u64; 4];
        for s in &mut rng_state {
            *s = read_u64(r).map_err(io)?;
        }
        let opt_len = read_u64(r).map_err(io)? as usize;
        if opt_len != r.len() {
            return Err(format!(
                "optimizer state length {opt_len} does not match remaining {} bytes",
                r.len()
            ));
        }
        let opt = r.to_vec();
        // Trial-parse so train_resumable can restore infallibly.
        Adam::new(0.0)
            .load_state(&opt[..])
            .map_err(|e| format!("embedded optimizer state: {e}"))?;
        Ok(TrainState {
            task,
            seed,
            epochs,
            batch_size,
            lr,
            weight_decay,
            epochs_done,
            epoch_losses,
            seconds,
            rng_state,
            opt,
        })
    }

    /// Verifies this state can resume a run with the given task/config;
    /// every mismatch is named. A resumed run MUST use the training
    /// flags of the interrupted run — anything else (a different
    /// schedule horizon, batch geometry, or seed) would produce a run
    /// that silently differs from the uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first mismatched field.
    pub fn check_resume(&self, task: Task, cfg: &TrainConfig) -> Result<(), String> {
        if self.task != task {
            return Err(format!(
                "task mismatch: snapshot was {:?}, this run is {:?}",
                self.task, task
            ));
        }
        let check = |name: &str, stored: String, given: String| -> Result<(), String> {
            if stored != given {
                Err(format!(
                    "--{name} mismatch: snapshot used {stored}, this run asks for {given} \
                     (resume with the original flags)"
                ))
            } else {
                Ok(())
            }
        };
        check("seed", self.seed.to_string(), cfg.seed.to_string())?;
        check("epochs", self.epochs.to_string(), cfg.epochs.to_string())?;
        check(
            "batch-size",
            self.batch_size.to_string(),
            cfg.batch_size.to_string(),
        )?;
        check(
            "lr",
            self.lr.to_bits().to_string(),
            cfg.lr.to_bits().to_string(),
        )?;
        check(
            "weight-decay",
            self.weight_decay.to_bits().to_string(),
            cfg.weight_decay.to_bits().to_string(),
        )?;
        Ok(())
    }
}

/// Options for [`train_resumable`] beyond the model/data/config triple.
#[derive(Default)]
pub struct ResumableTrain<'a> {
    /// Which loss to optimize.
    pub task: Task,
    /// Resume from this epoch-boundary snapshot (the model must carry
    /// the matching weights — i.e. come from the same checkpoint).
    /// `None` starts from epoch 0.
    pub resume: Option<TrainState>,
    /// Checked between epochs; when set, the loop finishes the epoch in
    /// flight, reports it, and returns with
    /// [`TrainOutcome::interrupted`] = `true`. Wire
    /// [`crate::interrupt::flag`] here for SIGINT/SIGTERM handling.
    pub stop: Option<&'a AtomicBool>,
}

/// What [`train_resumable`] returns.
#[derive(Debug)]
pub struct TrainOutcome {
    /// Cumulative history — includes epochs restored from a resumed
    /// snapshot, so the record always spans epoch 1 to the last one run.
    pub history: TrainHistory,
    /// Whether the stop flag ended the run before `cfg.epochs`.
    pub interrupted: bool,
    /// Epoch-boundary state after the last completed epoch; save this
    /// (checkpoint section [`crate::TRAIN_STATE_SECTION`]) to make the
    /// interruption resumable.
    pub state: TrainState,
}

/// Trains the model on `samples` for the given task.
///
/// Returns the per-epoch loss history. Training is deterministic for a
/// fixed `TrainConfig::seed` and rayon-independent reduction order is
/// enforced by merging gradients in sample order.
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] if a minibatch loss goes NaN/Inf; the
/// diverged step is not applied.
pub fn train(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    task: Task,
    cfg: &TrainConfig,
) -> Result<TrainHistory, TrainError> {
    train_with_progress(model, samples, task, cfg, &mut |_, _| {})
}

/// [`train`] with a per-epoch progress observer.
///
/// After each epoch the callback receives the model (shared borrow — the
/// optimizer step for that epoch has been applied) and an
/// [`EpochProgress`] record. This is how the CLI streams per-epoch loss
/// and runs periodic held-out evaluation without the loop knowing about
/// either; the callback cannot mutate the model, so training semantics
/// (and determinism) are unaffected by whatever the observer does.
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] if a minibatch loss goes NaN/Inf.
pub fn train_with_progress(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    task: Task,
    cfg: &TrainConfig,
    progress: &mut dyn FnMut(&CircuitGps, &EpochProgress),
) -> Result<TrainHistory, TrainError> {
    Ok(train_resumable(
        model,
        samples,
        cfg,
        ResumableTrain {
            task,
            resume: None,
            stop: None,
        },
        progress,
        &mut |_, _| {},
    )?
    .history)
}

/// The full training loop: [`train_with_progress`] plus resumability.
///
/// `epoch_end` receives a serializable [`TrainState`] after every epoch
/// (after `progress`); the CLI persists every N-th one as a rolling
/// snapshot. When `opts.resume` is set, the loop continues at
/// `state.epochs_done` with the restored optimizer/RNG state: because
/// the shuffle RNG only advances at epoch boundaries and per-step tape
/// seeds are pure functions of `(seed, epoch, step)`, the resumed run
/// replays the exact step sequence of an uninterrupted run — callers can
/// assert equal final metrics, and the chaos suite does.
///
/// The stop flag (`opts.stop`) is only honored between epochs: an
/// interrupt during epoch `e` lets `e` finish, reports it, and returns
/// `interrupted = true` with epoch `e`'s state. Mid-epoch the
/// model/optimizer/RNG triple is inconsistent, so there is nothing
/// cheaper that is also *correct* to snapshot.
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] the moment a minibatch loss goes
/// NaN/Inf, *before* applying that step's gradients and before the
/// epoch's callbacks — so the model holds the last finite weights and
/// the caller's latest `epoch_end` snapshot is still a valid resume
/// point.
pub fn train_resumable(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    cfg: &TrainConfig,
    opts: ResumableTrain<'_>,
    progress: &mut dyn FnMut(&CircuitGps, &EpochProgress),
    epoch_end: &mut dyn FnMut(&CircuitGps, &TrainState),
) -> Result<TrainOutcome, TrainError> {
    let start = std::time::Instant::now();
    let task = opts.task;
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let steps_per_epoch = samples.len().div_ceil(cfg.batch_size).max(1);
    let schedule = CosineSchedule::new(
        cfg.lr,
        cfg.lr * 0.05,
        cfg.warmup,
        cfg.epochs * steps_per_epoch,
    );
    let mut history = TrainHistory::default();
    let (mut rng, start_epoch, base_seconds) = match &opts.resume {
        Some(st) => {
            opt.load_state(&st.opt[..])
                .expect("TrainState::from_bytes trial-parsed this");
            history.epoch_losses = st.epoch_losses.clone();
            (StdRng::from_state(st.rng_state), st.epochs_done, st.seconds)
        }
        None => (StdRng::seed_from_u64(cfg.seed), 0, 0.0),
    };
    let mut step = start_epoch * steps_per_epoch;
    let make_state =
        |epochs_done: usize, history: &TrainHistory, rng: &StdRng, opt: &Adam, elapsed: f64| {
            let mut opt_bytes = Vec::new();
            opt.save_state(&mut opt_bytes)
                .expect("writing to a Vec cannot fail");
            TrainState {
                task,
                seed: cfg.seed,
                epochs: cfg.epochs,
                batch_size: cfg.batch_size,
                lr: cfg.lr,
                weight_decay: cfg.weight_decay,
                epochs_done,
                epoch_losses: history.epoch_losses.clone(),
                seconds: base_seconds + elapsed,
                rng_state: rng.state(),
                opt: opt_bytes,
            }
        };
    let mut last_state = make_state(start_epoch, &history, &rng, &opt, 0.0);
    let mut interrupted = false;

    for epoch in start_epoch..cfg.epochs {
        if opts.stop.is_some_and(|s| s.load(Ordering::SeqCst)) {
            interrupted = true;
            break;
        }
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;

        for batch in order.chunks(cfg.batch_size) {
            let store = model.store();
            // The batch is split into a few sub-batches, each packed
            // block-diagonally onto one tape (so batch norm sees many
            // graphs); the sub-batch count is part of the training
            // semantics (BN statistics are per sub-batch). The compat
            // rayon shim runs the chunks on real `std::thread::scope`
            // workers, so sub-batches train in parallel on multicore
            // hosts. Note the per-op threaded matmul kernels can nest
            // inside these workers for very large sub-batches (above the
            // `CIRGPS_PAR_MACS` threshold); that oversubscribes briefly
            // but stays correct — set `CIRGPS_PAR_MACS=0` to keep
            // batch-level threading only.
            let n_sub = rayon::current_num_threads().clamp(1, batch.len().div_ceil(2).max(1));
            let sub_size = batch.len().div_ceil(n_sub);
            let results: Vec<(f64, usize, GradStore)> = batch
                .par_chunks(sub_size)
                .enumerate()
                .map(|(ci, chunk)| {
                    let subs: Vec<&PreparedSample> = chunk.iter().map(|&i| &samples[i]).collect();
                    let mut grads = GradStore::new(store);
                    let loss_val = {
                        // Inner scope: dropping the tape returns its pooled
                        // buffers before the next sub-batch records.
                        let mut tape = Tape::new(
                            store,
                            true,
                            cfg.seed ^ (ci as u64) ^ ((epoch as u64) << 24) ^ ((step as u64) << 40),
                        );
                        let loss = match task {
                            Task::LinkPrediction => model.loss_link_batch(&mut tape, &subs),
                            Task::Regression => model.loss_reg_batch(&mut tape, &subs),
                        };
                        tape.backward(loss, &mut grads);
                        tape.value(loss).item()
                    };
                    // Gradients of a per-sub-batch *mean* loss: reweight by
                    // sub-batch size so merging yields the full-batch mean.
                    grads.scale(subs.len() as f32);
                    (loss_val as f64 * subs.len() as f64, subs.len(), grads)
                })
                .collect();

            let mut merged = GradStore::new(model.store());
            let mut batch_loss = 0.0f64;
            for (loss, _, g) in results {
                batch_loss += loss;
                merged.merge(g);
            }
            merged.scale(1.0 / batch.len() as f32);
            merged.clip_global_norm(cfg.clip);

            // Chaos hook: inject a diverged batch to exercise the abort
            // path (`train.loss=error[@hit]`).
            if cirgps_failpoints::eval("train.loss").is_some() {
                batch_loss = f64::NAN;
            }
            // Divergence check before the optimizer step: a NaN/Inf loss
            // means the gradients are poison too, so abort while the
            // weights are still the last finite state.
            let batch_mean = batch_loss / batch.len() as f64;
            if !batch_mean.is_finite() {
                return Err(TrainError::NonFiniteLoss {
                    epoch: epoch + 1,
                    step,
                    loss: batch_mean,
                });
            }

            opt.set_lr(schedule.lr_at(step));
            opt.step(model.store_mut(), &merged);
            step += 1;
            epoch_loss += batch_loss;
            seen += batch.len();
        }

        let mean = (epoch_loss / seen.max(1) as f64) as f32;
        history.epoch_losses.push(mean);
        if cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0 {
            eprintln!("epoch {:>3}: loss {:.4}", epoch + 1, mean);
        }
        progress(
            model,
            &EpochProgress {
                epoch: epoch + 1,
                epochs: cfg.epochs,
                loss: mean,
                lr: schedule.lr_at(step.saturating_sub(1)),
                seconds: base_seconds + start.elapsed().as_secs_f64(),
            },
        );
        last_state = make_state(
            epoch + 1,
            &history,
            &rng,
            &opt,
            start.elapsed().as_secs_f64(),
        );
        epoch_end(model, &last_state);
        // Chaos hook: an injected abort here lands *after* the CLI's
        // snapshot callback — exactly the "killed right after epoch N"
        // scenario the resume path must survive.
        cirgps_failpoints::eval("train.epoch_end");
    }
    history.seconds = base_seconds + start.elapsed().as_secs_f64();
    Ok(TrainOutcome {
        history,
        interrupted,
        state: last_state,
    })
}

/// Pre-trains on link prediction (the meta-learning phase).
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] if a minibatch loss goes NaN/Inf.
pub fn pretrain_link(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    cfg: &TrainConfig,
) -> Result<TrainHistory, TrainError> {
    train(model, samples, Task::LinkPrediction, cfg)
}

/// Fine-tunes for regression per [`FinetuneMode`]:
///
/// * `Scratch` — the caller passes a freshly initialized model;
/// * `HeadOnly` — freezes encoders + GPS layers first (fast convergence);
/// * `All` — trains every parameter from the pre-trained initialization.
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] if a minibatch loss goes NaN/Inf.
pub fn finetune_regression(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    mode: FinetuneMode,
    cfg: &TrainConfig,
) -> Result<TrainHistory, TrainError> {
    finetune_regression_with_progress(model, samples, mode, cfg, &mut |_, _| {})
}

/// [`finetune_regression`] with a per-epoch progress observer (see
/// [`train_with_progress`] for the callback contract).
///
/// # Errors
///
/// [`TrainError::NonFiniteLoss`] if a minibatch loss goes NaN/Inf. The
/// model is unfrozen again even on the error path, so a head-only run
/// that diverges leaves the model usable.
pub fn finetune_regression_with_progress(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    mode: FinetuneMode,
    cfg: &TrainConfig,
    progress: &mut dyn FnMut(&CircuitGps, &EpochProgress),
) -> Result<TrainHistory, TrainError> {
    match mode {
        FinetuneMode::Scratch | FinetuneMode::All => {
            model.unfreeze_all();
        }
        FinetuneMode::HeadOnly => {
            model.freeze_backbone();
        }
    }
    let history = train_with_progress(model, samples, Task::Regression, cfg, progress);
    if mode == FinetuneMode::HeadOnly {
        model.unfreeze_all();
    }
    history
}

/// Chunk size for parallel batched evaluation: each rayon worker runs
/// the tape-free batched engine over one chunk (the engine tiles for L2
/// internally), so evaluation is batched *and* multicore.
const EVAL_CHUNK: usize = 32;

/// Batched tape-free predictions over `samples`, chunked across worker
/// threads. ~2× faster per sample than the per-sample taped path the
/// evaluation loops used before, with bitwise-identical outputs (see
/// `docs/inference.md`).
fn predict_batched(model: &CircuitGps, samples: &[PreparedSample], reg: bool) -> Vec<f32> {
    samples
        .par_chunks(EVAL_CHUNK)
        .flat_map_iter(|chunk| {
            let refs: Vec<&PreparedSample> = chunk.iter().collect();
            if reg {
                model.predict_reg_batch(&refs)
            } else {
                model.predict_link_batch(&refs)
            }
        })
        .collect()
}

/// Evaluates link prediction (zero-shot when `samples` come from designs
/// unseen in training). Runs on the batched tape-free engine.
pub fn evaluate_link(model: &CircuitGps, samples: &[PreparedSample]) -> LinkMetrics {
    let scores = predict_batched(model, samples, false);
    let labels: Vec<f32> = samples.iter().map(|s| s.label).collect();
    link_metrics(&scores, &labels)
}

/// Evaluates regression. Runs on the batched tape-free engine.
pub fn evaluate_regression(model: &CircuitGps, samples: &[PreparedSample]) -> RegMetrics {
    let preds = predict_batched(model, samples, true);
    let targets: Vec<f32> = samples.iter().map(|s| s.target).collect();
    reg_metrics(&preds, &targets)
}

/// Per-sample regression predictions (used by the energy-validation
/// flow). Runs on the batched tape-free engine.
pub fn predict_regression(model: &CircuitGps, samples: &[PreparedSample]) -> Vec<f32> {
    predict_batched(model, samples, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use circuit_graph::{Edge, EdgeType, GraphBuilder, NodeType};
    use graph_pe::PeKind;
    use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

    /// Builds a toy dataset where positives are graph-adjacent pairs with
    /// a shared neighborhood and negatives are distant pairs — separable
    /// from structure alone.
    fn toy_dataset() -> Vec<PreparedSample> {
        let mut b = GraphBuilder::new();
        // Two clusters of net-pin stars joined by a long path.
        let cluster = |b: &mut GraphBuilder, tag: &str| -> Vec<u32> {
            let hub = b.add_node(NodeType::Net, &format!("{tag}hub"));
            let mut out = vec![hub];
            for i in 0..6 {
                let p = b.add_node(NodeType::Pin, &format!("{tag}p{i}"));
                b.add_edge(hub, p, EdgeType::NetPin);
                out.push(p);
            }
            out
        };
        let c1 = cluster(&mut b, "a");
        let c2 = cluster(&mut b, "b");
        // Path between hubs.
        let mut prev = c1[0];
        for i in 0..4 {
            let mid = b.add_node(NodeType::Device, &format!("m{i}"));
            b.add_edge(prev, mid, EdgeType::DevicePin);
            prev = mid;
        }
        b.add_edge(prev, c2[0], EdgeType::DevicePin);
        let g = b.build();

        // Positive links: pin pairs within a cluster. Negatives: across.
        let mut links = Vec::new();
        for i in 1..5 {
            links.push((c1[i], c1[i + 1], 1.0f32));
            links.push((c2[i], c2[i + 1], 1.0f32));
            links.push((c1[i], c2[i], 0.0f32));
            links.push((c1[i + 1], c2[i], 0.0f32));
        }
        let injected: Vec<Edge> = links
            .iter()
            .map(|&(a, b2, _)| Edge {
                a,
                b: b2,
                ty: EdgeType::CouplingPinPin,
            })
            .collect();
        let aug = g.with_injected_links(&injected);
        let xcn = XcNormalizer::fit(&[&aug]);
        let mut sampler = SubgraphSampler::new(
            &aug,
            SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
        );
        links
            .iter()
            .map(|&(a, b2, y)| {
                let sub = sampler.enclosing_subgraph(a, b2);
                PreparedSample::new(sub, PeKind::Dspd, &xcn, y, y * 0.6)
            })
            .collect()
    }

    fn tiny_model() -> CircuitGps {
        CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            dropout: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn link_training_reduces_loss_and_separates() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 5e-3,
            ..Default::default()
        };
        let hist = pretrain_link(&mut model, &data, &cfg).unwrap();
        let first = hist.epoch_losses[0];
        let last = *hist.epoch_losses.last().unwrap();
        assert!(last < first * 0.7, "loss did not drop: {first} -> {last}");
        let m = evaluate_link(&model, &data);
        assert!(m.accuracy > 0.8, "train accuracy {:.3}", m.accuracy);
        assert!(m.auc > 0.9, "train AUC {:.3}", m.auc);
    }

    #[test]
    fn regression_training_fits_targets() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            lr: 5e-3,
            ..Default::default()
        };
        let hist = finetune_regression(&mut model, &data, FinetuneMode::Scratch, &cfg).unwrap();
        assert!(hist.epoch_losses.last().unwrap() < &0.2);
        let m = evaluate_regression(&model, &data);
        assert!(m.mae < 0.2, "MAE {:.3}", m.mae);
    }

    #[test]
    fn head_only_finetune_changes_only_head() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        };
        pretrain_link(&mut model, &data, &cfg).unwrap();

        // Snapshot a backbone parameter.
        let backbone_before: Vec<f32> = model
            .store()
            .iter()
            .find(|(_, name, _)| name.starts_with("gps.0.mpnn"))
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();
        finetune_regression(&mut model, &data, FinetuneMode::HeadOnly, &cfg).unwrap();
        let backbone_after: Vec<f32> = model
            .store()
            .iter()
            .find(|(_, name, _)| name.starts_with("gps.0.mpnn"))
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();
        assert_eq!(
            backbone_before, backbone_after,
            "backbone changed in head-only mode"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_dataset();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let mut m1 = tiny_model();
        let h1 = pretrain_link(&mut m1, &data, &cfg).unwrap();
        let mut m2 = tiny_model();
        let h2 = pretrain_link(&mut m2, &data, &cfg).unwrap();
        assert_eq!(h1.epoch_losses, h2.epoch_losses);
    }

    #[test]
    fn interrupted_run_resumed_matches_uninterrupted_bitwise() {
        let data = toy_dataset();
        let cfg = TrainConfig {
            epochs: 6,
            batch_size: 4,
            lr: 5e-3,
            ..Default::default()
        };

        // Reference: straight-through run.
        let mut clean = tiny_model();
        let clean_hist = train_with_progress(
            &mut clean,
            &data,
            Task::LinkPrediction,
            &cfg,
            &mut |_, _| {},
        )
        .unwrap();

        // Interrupted run: stop flag raised from the progress callback at
        // the end of epoch 3 — the loop must finish epoch 3, report it,
        // and return its state.
        let stop = AtomicBool::new(false);
        let mut partial = tiny_model();
        let outcome = train_resumable(
            &mut partial,
            &data,
            &cfg,
            ResumableTrain {
                task: Task::LinkPrediction,
                resume: None,
                stop: Some(&stop),
            },
            &mut |_, p| {
                if p.epoch == 3 {
                    stop.store(true, Ordering::SeqCst);
                }
            },
            &mut |_, _| {},
        )
        .unwrap();
        assert!(outcome.interrupted);
        assert_eq!(outcome.state.epochs_done, 3);
        assert_eq!(outcome.history.epoch_losses.len(), 3);
        assert_eq!(
            outcome.history.epoch_losses,
            clean_hist.epoch_losses[..3].to_vec()
        );

        // Resume through the wire format, as the CLI does.
        let restored = TrainState::from_bytes(&outcome.state.to_bytes()).unwrap();
        restored.check_resume(Task::LinkPrediction, &cfg).unwrap();
        let resumed = train_resumable(
            &mut partial,
            &data,
            &cfg,
            ResumableTrain {
                task: Task::LinkPrediction,
                resume: Some(restored),
                stop: None,
            },
            &mut |_, _| {},
            &mut |_, _| {},
        )
        .unwrap();
        assert!(!resumed.interrupted);
        assert_eq!(resumed.state.epochs_done, cfg.epochs);
        // Loss history must be bitwise-identical, including the restored
        // prefix.
        assert_eq!(resumed.history.epoch_losses, clean_hist.epoch_losses);
        // And the models must agree bitwise on every prediction.
        let a = predict_regression(&clean, &data);
        let b = predict_regression(&partial, &data);
        assert_eq!(a, b, "resumed model diverged from uninterrupted run");
    }

    #[test]
    fn non_finite_loss_aborts_before_poisoning_the_weights() {
        let mut data = toy_dataset();
        // One poisoned regression target is enough to NaN the batch loss.
        data[0].target = f32::NAN;
        let mut model = tiny_model();
        let before: Vec<u32> = model
            .store()
            .iter()
            .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            .collect();
        // Whole dataset in one batch: the poisoned sample is in step 0.
        let cfg = TrainConfig {
            epochs: 3,
            batch_size: data.len(),
            lr: 5e-3,
            ..Default::default()
        };
        let err = finetune_regression(&mut model, &data, FinetuneMode::Scratch, &cfg).unwrap_err();
        let TrainError::NonFiniteLoss { epoch, step, loss } = err.clone();
        assert_eq!(epoch, 1);
        assert_eq!(step, 0);
        assert!(loss.is_nan());
        assert!(err.to_string().contains("non-finite loss"), "{err}");
        // The diverged step was never applied: weights are bitwise
        // untouched, not NaN-poisoned.
        let after: Vec<u32> = model
            .store()
            .iter()
            .flat_map(|(_, _, t)| t.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>())
            .collect();
        assert_eq!(before, after, "diverged step mutated the weights");
    }

    #[test]
    fn train_state_round_trip_and_check_resume() {
        let opt = Adam::new(1e-3);
        let mut opt_bytes = Vec::new();
        opt.save_state(&mut opt_bytes).unwrap();
        let cfg = TrainConfig::default();
        let state = TrainState {
            task: Task::Regression,
            seed: cfg.seed,
            epochs: cfg.epochs,
            batch_size: cfg.batch_size,
            lr: cfg.lr,
            weight_decay: cfg.weight_decay,
            epochs_done: 2,
            epoch_losses: vec![0.5, 0.25],
            seconds: 1.75,
            rng_state: [1, 2, 3, 4],
            opt: opt_bytes,
        };
        let rt = TrainState::from_bytes(&state.to_bytes()).unwrap();
        assert_eq!(rt.task, state.task);
        assert_eq!(rt.seed, state.seed);
        assert_eq!(rt.epochs, state.epochs);
        assert_eq!(rt.batch_size, state.batch_size);
        assert_eq!(rt.lr.to_bits(), state.lr.to_bits());
        assert_eq!(rt.weight_decay.to_bits(), state.weight_decay.to_bits());
        assert_eq!(rt.epochs_done, 2);
        assert_eq!(rt.epoch_losses, state.epoch_losses);
        assert_eq!(rt.seconds, state.seconds);
        assert_eq!(rt.rng_state, state.rng_state);
        assert_eq!(rt.opt, state.opt);

        // Truncation and garbage are named errors, not panics.
        let bytes = state.to_bytes();
        assert!(TrainState::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(TrainState::from_bytes(&[]).is_err());

        // check_resume names the first mismatched flag.
        rt.check_resume(Task::Regression, &cfg).unwrap();
        let err = rt.check_resume(Task::LinkPrediction, &cfg).unwrap_err();
        assert!(err.contains("task mismatch"), "{err}");
        let err = rt
            .check_resume(
                Task::Regression,
                &TrainConfig {
                    epochs: cfg.epochs + 1,
                    ..cfg.clone()
                },
            )
            .unwrap_err();
        assert!(err.contains("--epochs"), "{err}");
        let err = rt
            .check_resume(
                Task::Regression,
                &TrainConfig {
                    seed: cfg.seed ^ 1,
                    ..cfg.clone()
                },
            )
            .unwrap_err();
        assert!(err.contains("--seed"), "{err}");
    }
}
