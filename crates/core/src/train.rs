//! Training loops: link-prediction pre-training, regression fine-tuning
//! (scratch / head-only / all, Section III-E) and evaluation.
//!
//! Minibatches are data-parallel: each sample's forward/backward runs on a
//! rayon worker with its own tape; per-worker gradient stores are merged,
//! averaged, clipped and applied with AdamW under a cosine schedule.

use cirgps_nn::{Adam, CosineSchedule, GradStore, Tape};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rayon::prelude::*;

use crate::config::{FinetuneMode, TrainConfig};
use crate::metrics::{link_metrics, reg_metrics, LinkMetrics, RegMetrics};
use crate::model::CircuitGps;
use crate::prepared::PreparedSample;

/// Which loss the loop optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Binary link prediction (BCE) — the pre-training task.
    LinkPrediction,
    /// Capacitance regression (L1) — the downstream task.
    Regression,
}

/// Per-epoch training record.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct TrainHistory {
    /// Mean training loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Wall-clock seconds spent in training.
    pub seconds: f64,
}

/// What the training loop reports to a progress observer after each
/// epoch (see [`train_with_progress`]).
#[derive(Debug, Clone, Copy)]
pub struct EpochProgress {
    /// 1-based epoch that just finished.
    pub epoch: usize,
    /// Total epochs this run will perform.
    pub epochs: usize,
    /// Mean training loss over the finished epoch.
    pub loss: f32,
    /// Learning rate of the epoch's last optimizer step.
    pub lr: f32,
    /// Wall-clock seconds since training started.
    pub seconds: f64,
}

/// Trains the model on `samples` for the given task.
///
/// Returns the per-epoch loss history. Training is deterministic for a
/// fixed `TrainConfig::seed` and rayon-independent reduction order is
/// enforced by merging gradients in sample order.
pub fn train(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    task: Task,
    cfg: &TrainConfig,
) -> TrainHistory {
    train_with_progress(model, samples, task, cfg, &mut |_, _| {})
}

/// [`train`] with a per-epoch progress observer.
///
/// After each epoch the callback receives the model (shared borrow — the
/// optimizer step for that epoch has been applied) and an
/// [`EpochProgress`] record. This is how the CLI streams per-epoch loss
/// and runs periodic held-out evaluation without the loop knowing about
/// either; the callback cannot mutate the model, so training semantics
/// (and determinism) are unaffected by whatever the observer does.
pub fn train_with_progress(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    task: Task,
    cfg: &TrainConfig,
    progress: &mut dyn FnMut(&CircuitGps, &EpochProgress),
) -> TrainHistory {
    let start = std::time::Instant::now();
    let mut opt = Adam::new(cfg.lr).with_weight_decay(cfg.weight_decay);
    let steps_per_epoch = samples.len().div_ceil(cfg.batch_size).max(1);
    let schedule = CosineSchedule::new(
        cfg.lr,
        cfg.lr * 0.05,
        cfg.warmup,
        cfg.epochs * steps_per_epoch,
    );
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut history = TrainHistory::default();
    let mut step = 0usize;

    for epoch in 0..cfg.epochs {
        let mut order: Vec<usize> = (0..samples.len()).collect();
        order.shuffle(&mut rng);
        let mut epoch_loss = 0.0f64;
        let mut seen = 0usize;

        for batch in order.chunks(cfg.batch_size) {
            let store = model.store();
            // The batch is split into a few sub-batches, each packed
            // block-diagonally onto one tape (so batch norm sees many
            // graphs); the sub-batch count is part of the training
            // semantics (BN statistics are per sub-batch). The compat
            // rayon shim runs the chunks on real `std::thread::scope`
            // workers, so sub-batches train in parallel on multicore
            // hosts. Note the per-op threaded matmul kernels can nest
            // inside these workers for very large sub-batches (above the
            // `CIRGPS_PAR_MACS` threshold); that oversubscribes briefly
            // but stays correct — set `CIRGPS_PAR_MACS=0` to keep
            // batch-level threading only.
            let n_sub = rayon::current_num_threads().clamp(1, batch.len().div_ceil(2).max(1));
            let sub_size = batch.len().div_ceil(n_sub);
            let results: Vec<(f64, usize, GradStore)> = batch
                .par_chunks(sub_size)
                .enumerate()
                .map(|(ci, chunk)| {
                    let subs: Vec<&PreparedSample> = chunk.iter().map(|&i| &samples[i]).collect();
                    let mut grads = GradStore::new(store);
                    let loss_val = {
                        // Inner scope: dropping the tape returns its pooled
                        // buffers before the next sub-batch records.
                        let mut tape = Tape::new(
                            store,
                            true,
                            cfg.seed ^ (ci as u64) ^ ((epoch as u64) << 24) ^ ((step as u64) << 40),
                        );
                        let loss = match task {
                            Task::LinkPrediction => model.loss_link_batch(&mut tape, &subs),
                            Task::Regression => model.loss_reg_batch(&mut tape, &subs),
                        };
                        tape.backward(loss, &mut grads);
                        tape.value(loss).item()
                    };
                    // Gradients of a per-sub-batch *mean* loss: reweight by
                    // sub-batch size so merging yields the full-batch mean.
                    grads.scale(subs.len() as f32);
                    (loss_val as f64 * subs.len() as f64, subs.len(), grads)
                })
                .collect();

            let mut merged = GradStore::new(model.store());
            let mut batch_loss = 0.0f64;
            for (loss, _, g) in results {
                batch_loss += loss;
                merged.merge(g);
            }
            merged.scale(1.0 / batch.len() as f32);
            merged.clip_global_norm(cfg.clip);

            opt.set_lr(schedule.lr_at(step));
            opt.step(model.store_mut(), &merged);
            step += 1;
            epoch_loss += batch_loss;
            seen += batch.len();
        }

        let mean = (epoch_loss / seen.max(1) as f64) as f32;
        history.epoch_losses.push(mean);
        if cfg.log_every > 0 && (epoch + 1) % cfg.log_every == 0 {
            eprintln!("epoch {:>3}: loss {:.4}", epoch + 1, mean);
        }
        progress(
            model,
            &EpochProgress {
                epoch: epoch + 1,
                epochs: cfg.epochs,
                loss: mean,
                lr: schedule.lr_at(step.saturating_sub(1)),
                seconds: start.elapsed().as_secs_f64(),
            },
        );
    }
    history.seconds = start.elapsed().as_secs_f64();
    history
}

/// Pre-trains on link prediction (the meta-learning phase).
pub fn pretrain_link(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    cfg: &TrainConfig,
) -> TrainHistory {
    train(model, samples, Task::LinkPrediction, cfg)
}

/// Fine-tunes for regression per [`FinetuneMode`]:
///
/// * `Scratch` — the caller passes a freshly initialized model;
/// * `HeadOnly` — freezes encoders + GPS layers first (fast convergence);
/// * `All` — trains every parameter from the pre-trained initialization.
pub fn finetune_regression(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    mode: FinetuneMode,
    cfg: &TrainConfig,
) -> TrainHistory {
    finetune_regression_with_progress(model, samples, mode, cfg, &mut |_, _| {})
}

/// [`finetune_regression`] with a per-epoch progress observer (see
/// [`train_with_progress`] for the callback contract).
pub fn finetune_regression_with_progress(
    model: &mut CircuitGps,
    samples: &[PreparedSample],
    mode: FinetuneMode,
    cfg: &TrainConfig,
    progress: &mut dyn FnMut(&CircuitGps, &EpochProgress),
) -> TrainHistory {
    match mode {
        FinetuneMode::Scratch | FinetuneMode::All => {
            model.unfreeze_all();
        }
        FinetuneMode::HeadOnly => {
            model.freeze_backbone();
        }
    }
    let history = train_with_progress(model, samples, Task::Regression, cfg, progress);
    if mode == FinetuneMode::HeadOnly {
        model.unfreeze_all();
    }
    history
}

/// Chunk size for parallel batched evaluation: each rayon worker runs
/// the tape-free batched engine over one chunk (the engine tiles for L2
/// internally), so evaluation is batched *and* multicore.
const EVAL_CHUNK: usize = 32;

/// Batched tape-free predictions over `samples`, chunked across worker
/// threads. ~2× faster per sample than the per-sample taped path the
/// evaluation loops used before, with bitwise-identical outputs (see
/// `docs/inference.md`).
fn predict_batched(model: &CircuitGps, samples: &[PreparedSample], reg: bool) -> Vec<f32> {
    samples
        .par_chunks(EVAL_CHUNK)
        .flat_map_iter(|chunk| {
            let refs: Vec<&PreparedSample> = chunk.iter().collect();
            if reg {
                model.predict_reg_batch(&refs)
            } else {
                model.predict_link_batch(&refs)
            }
        })
        .collect()
}

/// Evaluates link prediction (zero-shot when `samples` come from designs
/// unseen in training). Runs on the batched tape-free engine.
pub fn evaluate_link(model: &CircuitGps, samples: &[PreparedSample]) -> LinkMetrics {
    let scores = predict_batched(model, samples, false);
    let labels: Vec<f32> = samples.iter().map(|s| s.label).collect();
    link_metrics(&scores, &labels)
}

/// Evaluates regression. Runs on the batched tape-free engine.
pub fn evaluate_regression(model: &CircuitGps, samples: &[PreparedSample]) -> RegMetrics {
    let preds = predict_batched(model, samples, true);
    let targets: Vec<f32> = samples.iter().map(|s| s.target).collect();
    reg_metrics(&preds, &targets)
}

/// Per-sample regression predictions (used by the energy-validation
/// flow). Runs on the batched tape-free engine.
pub fn predict_regression(model: &CircuitGps, samples: &[PreparedSample]) -> Vec<f32> {
    predict_batched(model, samples, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use circuit_graph::{Edge, EdgeType, GraphBuilder, NodeType};
    use graph_pe::PeKind;
    use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

    /// Builds a toy dataset where positives are graph-adjacent pairs with
    /// a shared neighborhood and negatives are distant pairs — separable
    /// from structure alone.
    fn toy_dataset() -> Vec<PreparedSample> {
        let mut b = GraphBuilder::new();
        // Two clusters of net-pin stars joined by a long path.
        let cluster = |b: &mut GraphBuilder, tag: &str| -> Vec<u32> {
            let hub = b.add_node(NodeType::Net, &format!("{tag}hub"));
            let mut out = vec![hub];
            for i in 0..6 {
                let p = b.add_node(NodeType::Pin, &format!("{tag}p{i}"));
                b.add_edge(hub, p, EdgeType::NetPin);
                out.push(p);
            }
            out
        };
        let c1 = cluster(&mut b, "a");
        let c2 = cluster(&mut b, "b");
        // Path between hubs.
        let mut prev = c1[0];
        for i in 0..4 {
            let mid = b.add_node(NodeType::Device, &format!("m{i}"));
            b.add_edge(prev, mid, EdgeType::DevicePin);
            prev = mid;
        }
        b.add_edge(prev, c2[0], EdgeType::DevicePin);
        let g = b.build();

        // Positive links: pin pairs within a cluster. Negatives: across.
        let mut links = Vec::new();
        for i in 1..5 {
            links.push((c1[i], c1[i + 1], 1.0f32));
            links.push((c2[i], c2[i + 1], 1.0f32));
            links.push((c1[i], c2[i], 0.0f32));
            links.push((c1[i + 1], c2[i], 0.0f32));
        }
        let injected: Vec<Edge> = links
            .iter()
            .map(|&(a, b2, _)| Edge {
                a,
                b: b2,
                ty: EdgeType::CouplingPinPin,
            })
            .collect();
        let aug = g.with_injected_links(&injected);
        let xcn = XcNormalizer::fit(&[&aug]);
        let mut sampler = SubgraphSampler::new(
            &aug,
            SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
        );
        links
            .iter()
            .map(|&(a, b2, y)| {
                let sub = sampler.enclosing_subgraph(a, b2);
                PreparedSample::new(sub, PeKind::Dspd, &xcn, y, y * 0.6)
            })
            .collect()
    }

    fn tiny_model() -> CircuitGps {
        CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            dropout: 0.0,
            ..Default::default()
        })
    }

    #[test]
    fn link_training_reduces_loss_and_separates() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 30,
            batch_size: 8,
            lr: 5e-3,
            ..Default::default()
        };
        let hist = pretrain_link(&mut model, &data, &cfg);
        let first = hist.epoch_losses[0];
        let last = *hist.epoch_losses.last().unwrap();
        assert!(last < first * 0.7, "loss did not drop: {first} -> {last}");
        let m = evaluate_link(&model, &data);
        assert!(m.accuracy > 0.8, "train accuracy {:.3}", m.accuracy);
        assert!(m.auc > 0.9, "train AUC {:.3}", m.auc);
    }

    #[test]
    fn regression_training_fits_targets() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 40,
            batch_size: 8,
            lr: 5e-3,
            ..Default::default()
        };
        let hist = finetune_regression(&mut model, &data, FinetuneMode::Scratch, &cfg);
        assert!(hist.epoch_losses.last().unwrap() < &0.2);
        let m = evaluate_regression(&model, &data);
        assert!(m.mae < 0.2, "MAE {:.3}", m.mae);
    }

    #[test]
    fn head_only_finetune_changes_only_head() {
        let data = toy_dataset();
        let mut model = tiny_model();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 8,
            ..Default::default()
        };
        pretrain_link(&mut model, &data, &cfg);

        // Snapshot a backbone parameter.
        let backbone_before: Vec<f32> = model
            .store()
            .iter()
            .find(|(_, name, _)| name.starts_with("gps.0.mpnn"))
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();
        finetune_regression(&mut model, &data, FinetuneMode::HeadOnly, &cfg);
        let backbone_after: Vec<f32> = model
            .store()
            .iter()
            .find(|(_, name, _)| name.starts_with("gps.0.mpnn"))
            .map(|(_, _, t)| t.as_slice().to_vec())
            .unwrap();
        assert_eq!(
            backbone_before, backbone_after,
            "backbone changed in head-only mode"
        );
    }

    #[test]
    fn training_is_deterministic() {
        let data = toy_dataset();
        let cfg = TrainConfig {
            epochs: 2,
            batch_size: 4,
            ..Default::default()
        };
        let mut m1 = tiny_model();
        let h1 = pretrain_link(&mut m1, &data, &cfg);
        let mut m2 = tiny_model();
        let h2 = pretrain_link(&mut m2, &data, &cfg);
        assert_eq!(h1.epoch_losses, h2.epoch_losses);
    }
}
