//! Self-describing model checkpoints: a versioned container that embeds
//! the [`ModelConfig`] next to the named parameter blob, so a checkpoint
//! can be loaded without knowing (or guessing) the architecture it was
//! trained with.
//!
//! The byte-level layout is specified in `docs/checkpoint-format.md`.
//! In short:
//!
//! ```text
//! magic  "CGPC"                     4 bytes
//! version u32 LE                    (currently 1)
//! config block                      length-prefixed ModelConfig fields
//! param blob                        ParamStore::save_blob records
//! ```
//!
//! The pre-container format (magic `CGPS`, a raw [`ParamStore`] dump
//! with no config) is still readable: [`CircuitGps::load_checkpoint`]
//! falls back to constructing a [`ModelConfig::default`] model, exactly
//! as old callers did by hand, and reports the file as
//! [`CheckpointFormat::Legacy`] so front ends can warn.

use std::io::{self, Read, Write};

use cirgps_nn::ParamLoadError;
use graph_pe::PeKind;

use crate::config::{AttnKind, ModelConfig, MpnnKind};
use crate::model::CircuitGps;

/// Container magic for the self-describing checkpoint format.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"CGPC";
/// Magic of the legacy raw parameter dump (no embedded config).
pub const LEGACY_MAGIC: &[u8; 4] = b"CGPS";
/// Highest container version this build can read and the version it
/// writes.
pub const CHECKPOINT_VERSION: u32 = 1;

/// Which on-disk format a checkpoint was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// The versioned container with an embedded [`ModelConfig`].
    V1,
    /// The pre-container raw weight dump; the model configuration is
    /// assumed to be [`ModelConfig::default`]. Deprecated — re-save with
    /// [`CircuitGps::save_checkpoint`] to embed the config.
    Legacy,
}

/// Why reading or writing a checkpoint failed. Every variant names the
/// offending field so CLI errors can say *what* mismatched, not just
/// that something did.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying reader/writer failed (or the file was truncated).
    Io(io::Error),
    /// The first four bytes are neither [`CHECKPOINT_MAGIC`] nor the
    /// legacy [`LEGACY_MAGIC`].
    BadMagic([u8; 4]),
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Highest version this build reads ([`CHECKPOINT_VERSION`]).
        supported: u32,
    },
    /// The embedded config block could not be decoded or fails
    /// [`ModelConfig::check`].
    Config(String),
    /// The parameter blob does not match the model built from the
    /// embedded config (names the parameter and both shapes).
    Params(ParamLoadError),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic(m) => write!(
                f,
                "bad checkpoint magic {m:?} (expected \"CGPC\" or legacy \"CGPS\")"
            ),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} is newer than this build supports \
                 (max {supported}); upgrade cirgps or re-save the checkpoint"
            ),
            CheckpointError::Config(msg) => write!(f, "embedded model config: {msg}"),
            CheckpointError::Params(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ParamLoadError> for CheckpointError {
    fn from(e: ParamLoadError) -> Self {
        match e {
            ParamLoadError::Io(io) => CheckpointError::Io(io),
            other => CheckpointError::Params(other),
        }
    }
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

// Config-block field tags; see docs/checkpoint-format.md for the table.
const MPNN_NONE: u8 = 0;
const MPNN_GATED_GCN: u8 = 1;
const ATTN_NONE: u8 = 0;
const ATTN_TRANSFORMER: u8 = 1;
const ATTN_PERFORMER: u8 = 2;
const PE_NONE: u8 = 0;
const PE_XC: u8 = 1;
const PE_DRNL: u8 = 2;
const PE_RWSE: u8 = 3;
const PE_LAPPE: u8 = 4;
const PE_DSPD: u8 = 5;

/// Serializes a [`ModelConfig`] as the fixed v1 field sequence (without
/// the surrounding length prefix).
fn write_config_fields<W: Write>(w: &mut W, cfg: &ModelConfig) -> io::Result<()> {
    write_u64(w, cfg.hidden_dim as u64)?;
    write_u64(w, cfg.num_layers as u64)?;
    write_u64(w, cfg.heads as u64)?;
    let mpnn = match cfg.mpnn {
        MpnnKind::None => MPNN_NONE,
        MpnnKind::GatedGcn => MPNN_GATED_GCN,
    };
    w.write_all(&[mpnn])?;
    let (attn, features) = match cfg.attn {
        AttnKind::None => (ATTN_NONE, 0u64),
        AttnKind::Transformer => (ATTN_TRANSFORMER, 0),
        AttnKind::Performer { features } => (ATTN_PERFORMER, features as u64),
    };
    w.write_all(&[attn])?;
    write_u64(w, features)?;
    let (pe, k) = match cfg.pe {
        PeKind::None => (PE_NONE, 0u64),
        PeKind::Xc => (PE_XC, 0),
        PeKind::Drnl => (PE_DRNL, 0),
        PeKind::Rwse { k } => (PE_RWSE, k as u64),
        PeKind::LapPe { k } => (PE_LAPPE, k as u64),
        PeKind::Dspd => (PE_DSPD, 0),
    };
    w.write_all(&[pe])?;
    write_u64(w, k)?;
    write_u64(w, cfg.pe_dim as u64)?;
    w.write_all(&cfg.dropout.to_le_bytes())?;
    write_u64(w, cfg.seed)?;
    Ok(())
}

/// Decodes the v1 config field sequence.
fn read_config_fields<R: Read>(r: &mut R) -> Result<ModelConfig, CheckpointError> {
    let hidden_dim = read_u64(r)? as usize;
    let num_layers = read_u64(r)? as usize;
    let heads = read_u64(r)? as usize;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mpnn = match tag[0] {
        MPNN_NONE => MpnnKind::None,
        MPNN_GATED_GCN => MpnnKind::GatedGcn,
        t => return Err(CheckpointError::Config(format!("unknown mpnn tag {t}"))),
    };
    r.read_exact(&mut tag)?;
    let attn_tag = tag[0];
    let features = read_u64(r)? as usize;
    let attn = match attn_tag {
        ATTN_NONE => AttnKind::None,
        ATTN_TRANSFORMER => AttnKind::Transformer,
        ATTN_PERFORMER => AttnKind::Performer { features },
        t => return Err(CheckpointError::Config(format!("unknown attn tag {t}"))),
    };
    r.read_exact(&mut tag)?;
    let pe_tag = tag[0];
    let k = read_u64(r)? as usize;
    let pe = match pe_tag {
        PE_NONE => PeKind::None,
        PE_XC => PeKind::Xc,
        PE_DRNL => PeKind::Drnl,
        PE_RWSE => PeKind::Rwse { k },
        PE_LAPPE => PeKind::LapPe { k },
        PE_DSPD => PeKind::Dspd,
        t => return Err(CheckpointError::Config(format!("unknown pe tag {t}"))),
    };
    let pe_dim = read_u64(r)? as usize;
    let mut f = [0u8; 4];
    r.read_exact(&mut f)?;
    let dropout = f32::from_le_bytes(f);
    let seed = read_u64(r)?;
    Ok(ModelConfig {
        hidden_dim,
        num_layers,
        heads,
        mpnn,
        attn,
        pe,
        pe_dim,
        dropout,
        seed,
    })
}

impl CircuitGps {
    /// Writes the self-describing checkpoint container: magic, format
    /// version, the model's [`ModelConfig`], and every named parameter
    /// and state buffer. [`CircuitGps::load_checkpoint`] reconstructs an
    /// identical model from this alone.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_checkpoint<W: Write>(&self, mut w: W) -> Result<(), CheckpointError> {
        w.write_all(CHECKPOINT_MAGIC)?;
        w.write_all(&CHECKPOINT_VERSION.to_le_bytes())?;
        // Length-prefixed config block so later versions can append
        // fields and still be skimmed by tooling.
        let mut cfg_block = Vec::new();
        write_config_fields(&mut cfg_block, &self.cfg)?;
        write_u64(&mut w, cfg_block.len() as u64)?;
        w.write_all(&cfg_block)?;
        self.store().save_blob(&mut w)?;
        Ok(())
    }

    /// Reads a checkpoint and constructs the model it describes.
    ///
    /// For the versioned container the model is built from the
    /// **embedded** config — no flags, no guessing, a non-default
    /// architecture round-trips by itself. For a legacy raw weight dump
    /// (magic `CGPS`) the model is built with [`ModelConfig::default`],
    /// which is what every legacy call site assumed; the returned
    /// [`CheckpointFormat::Legacy`] lets front ends print a deprecation
    /// warning.
    ///
    /// # Errors
    ///
    /// Returns a named [`CheckpointError`] on bad magic, a
    /// newer-than-supported version, an invalid embedded config, or a
    /// parameter name/shape mismatch.
    pub fn load_checkpoint<R: Read>(mut r: R) -> Result<(Self, CheckpointFormat), CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic == LEGACY_MAGIC {
            let mut model = CircuitGps::new(ModelConfig::default());
            model.store_mut().load_blob(&mut r)?;
            return Ok((model, CheckpointFormat::Legacy));
        }
        if &magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = read_u32(&mut r)?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let cfg_len = read_u64(&mut r)? as usize;
        if cfg_len > 1 << 16 {
            return Err(CheckpointError::Config(format!(
                "unreasonable config block length {cfg_len}"
            )));
        }
        let mut cfg_block = vec![0u8; cfg_len];
        r.read_exact(&mut cfg_block)?;
        let cfg = read_config_fields(&mut &cfg_block[..])?;
        cfg.check().map_err(CheckpointError::Config)?;
        let mut model = CircuitGps::new(cfg);
        model.store_mut().load_blob(&mut r)?;
        Ok((model, CheckpointFormat::V1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedSample;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

    fn sample() -> PreparedSample {
        let mut b = GraphBuilder::new();
        let n1 = b.add_node(NodeType::Net, "n1");
        let p1 = b.add_node(NodeType::Pin, "p1");
        let d1 = b.add_node(NodeType::Device, "d1");
        let n2 = b.add_node(NodeType::Net, "n2");
        b.set_xc(p1, 0, 1.0);
        b.set_xc(n1, 0, 2.0);
        b.add_edge(n1, p1, EdgeType::NetPin);
        b.add_edge(p1, d1, EdgeType::DevicePin);
        b.add_edge(d1, n2, EdgeType::NetPin);
        let g = b.build();
        let g = g.with_injected_links(&[circuit_graph::Edge {
            a: n1,
            b: n2,
            ty: EdgeType::CouplingNetNet,
        }]);
        let xcn = XcNormalizer::fit(&[&g]);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 32,
            },
        );
        let sub = s.enclosing_subgraph(n1, n2);
        PreparedSample::new(sub, PeKind::Dspd, &xcn, 1.0, 0.3)
    }

    /// A config that differs from the default in every dimension the
    /// container records — the round-trip must reproduce it exactly.
    fn non_default_config() -> ModelConfig {
        ModelConfig {
            hidden_dim: 24,
            num_layers: 2,
            heads: 3,
            mpnn: MpnnKind::GatedGcn,
            attn: AttnKind::Transformer,
            pe: PeKind::Dspd,
            pe_dim: 5,
            dropout: 0.05,
            seed: 0xBEEF,
        }
    }

    #[test]
    fn v1_round_trip_restores_config_and_predictions_bitwise() {
        let s = sample();
        let model = CircuitGps::new(non_default_config());
        let want_link = model.predict_link(&s);
        let want_reg = model.predict_reg(&s);

        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        let (loaded, fmt) = CircuitGps::load_checkpoint(&bytes[..]).unwrap();
        assert_eq!(fmt, CheckpointFormat::V1);
        assert_eq!(loaded.cfg, model.cfg, "embedded config must round-trip");
        assert_eq!(loaded.predict_link(&s).to_bits(), want_link.to_bits());
        assert_eq!(loaded.predict_reg(&s).to_bits(), want_reg.to_bits());
    }

    #[test]
    fn legacy_dump_still_loads_as_default_config() {
        let s = sample();
        let model = CircuitGps::new(ModelConfig::default());
        let want = model.predict_link(&s);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap(); // legacy raw dump
        let (loaded, fmt) = CircuitGps::load_checkpoint(&bytes[..]).unwrap();
        assert_eq!(fmt, CheckpointFormat::Legacy);
        assert_eq!(loaded.cfg, ModelConfig::default());
        assert_eq!(loaded.predict_link(&s).to_bits(), want.to_bits());
    }

    #[test]
    fn corrupted_magic_is_a_named_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes[0] = b'X';
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::BadMagic(m)) => assert_eq!(&m, b"XGPC"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_a_named_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_checkpoint_is_an_io_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            CircuitGps::load_checkpoint(&bytes[..]),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn legacy_dump_of_non_default_model_reports_shape_mismatch_by_name() {
        // The exact failure mode the self-describing container removes:
        // a legacy dump of a non-default architecture loads against the
        // assumed default config and must name the mismatched parameter
        // and both shapes instead of a bare I/O error.
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            ..ModelConfig::default()
        });
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::Params(ParamLoadError::ShapeMismatch {
                name,
                expected,
                found,
            })) => {
                assert!(!name.is_empty());
                assert_ne!(expected, found);
                let msg = CheckpointError::Params(ParamLoadError::ShapeMismatch {
                    name: name.clone(),
                    expected,
                    found,
                })
                .to_string();
                assert!(msg.contains(&name), "{msg}");
                assert!(msg.contains("shape mismatch"), "{msg}");
            }
            other => panic!("expected a named shape mismatch, got {other:?}"),
        }
    }
}
