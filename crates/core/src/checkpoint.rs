//! Self-describing model checkpoints: a versioned container that embeds
//! the [`ModelConfig`] next to the named parameter blob, so a checkpoint
//! can be loaded without knowing (or guessing) the architecture it was
//! trained with.
//!
//! The byte-level layout is specified in `docs/checkpoint-format.md`.
//! In short (version 2, the written format):
//!
//! ```text
//! magic  "CGPC"                     4 bytes
//! version u32 LE                    (currently 2)
//! body_len u64 LE                   byte length of the body
//! body                              config block + param blob +
//!                                   named optional sections
//! crc32 u32 LE                      over every preceding byte
//! ```
//!
//! The CRC32 footer (IEEE polynomial, the zlib `crc32()` function) is
//! verified **before** any body byte is parsed, so a torn or bit-flipped
//! file is rejected with a named [`CheckpointError::ChecksumMismatch`]
//! instead of being half-loaded. Named sections carry optional payloads
//! — today the resumable-training state
//! ([`TRAIN_STATE_SECTION`]) — without burdening readers that only want
//! the model.
//!
//! Version 1 files (no length/footer, no sections) still load, as does
//! the pre-container format (magic `CGPS`, a raw [`ParamStore`] dump
//! with no config): [`CircuitGps::load_checkpoint`] falls back to
//! constructing a [`ModelConfig::default`] model, exactly as old callers
//! did by hand, and reports the file as [`CheckpointFormat::Legacy`] so
//! front ends can warn.
//!
//! [`ParamStore`]: cirgps_nn::ParamStore

use std::io::{self, Read, Write};

use cirgps_nn::ParamLoadError;
use graph_pe::PeKind;

use crate::config::{AttnKind, ModelConfig, MpnnKind};
use crate::durable::Crc32;
use crate::model::CircuitGps;

/// Container magic for the self-describing checkpoint format.
pub const CHECKPOINT_MAGIC: &[u8; 4] = b"CGPC";
/// Magic of the legacy raw parameter dump (no embedded config).
pub const LEGACY_MAGIC: &[u8; 4] = b"CGPS";
/// Highest container version this build can read and the version it
/// writes.
pub const CHECKPOINT_VERSION: u32 = 2;
/// Section name under which resumable-training state
/// ([`crate::TrainState`]) is stored in a v2 container.
pub const TRAIN_STATE_SECTION: &str = "train_state";
/// Section name under which int8 weight quantization (per-tensor scales
/// plus codes, see [`cirgps_nn::QuantMatrix`]) is stored in a v2
/// container. Purely additive: readers predating the section — and
/// checkpoints predating it — interoperate as pure f32.
pub const QUANT_SECTION: &str = "quant";

/// Most sections a v2 container may carry; far above anything written
/// today, it only bounds the loop on (CRC-verified) input.
const MAX_SECTIONS: u32 = 1024;

/// Which on-disk format a checkpoint was read from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointFormat {
    /// The original container: embedded [`ModelConfig`], no integrity
    /// footer, no sections.
    V1,
    /// The current container: embedded [`ModelConfig`], named optional
    /// sections, and a CRC32 integrity footer over the whole file.
    V2,
    /// The pre-container raw weight dump; the model configuration is
    /// assumed to be [`ModelConfig::default`]. Deprecated — re-save with
    /// [`CircuitGps::save_checkpoint`] to embed the config.
    Legacy,
}

/// Why reading or writing a checkpoint failed. Every variant names the
/// offending field so CLI errors can say *what* mismatched, not just
/// that something did.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying reader/writer failed (or the file was truncated).
    Io(io::Error),
    /// The first four bytes are neither [`CHECKPOINT_MAGIC`] nor the
    /// legacy [`LEGACY_MAGIC`].
    BadMagic([u8; 4]),
    /// The container version is newer than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u32,
        /// Highest version this build reads ([`CHECKPOINT_VERSION`]).
        supported: u32,
    },
    /// The v2 CRC32 footer does not match the file contents: the file
    /// was torn mid-write or corrupted at rest. Nothing was loaded.
    ChecksumMismatch {
        /// Checksum recorded in the footer.
        stored: u32,
        /// Checksum computed over the file contents.
        computed: u32,
    },
    /// The embedded config block could not be decoded or fails
    /// [`ModelConfig::check`].
    Config(String),
    /// The parameter blob does not match the model built from the
    /// embedded config (names the parameter and both shapes).
    Params(ParamLoadError),
    /// The `quant` section is malformed or inconsistent with the model
    /// (truncated payload, unknown parameter, shape mismatch, or a
    /// weight this model cannot serve quantized).
    Quant(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O: {e}"),
            CheckpointError::BadMagic(m) => write!(
                f,
                "bad checkpoint magic {m:?} (expected \"CGPC\" or legacy \"CGPS\")"
            ),
            CheckpointError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} is newer than this build supports \
                 (max {supported}); upgrade cirgps or re-save the checkpoint"
            ),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch (footer {stored:#010x}, contents {computed:#010x}): \
                 the file is torn or corrupted; restore from the previous snapshot (.bak)"
            ),
            CheckpointError::Config(msg) => write!(f, "embedded model config: {msg}"),
            CheckpointError::Params(e) => write!(f, "{e}"),
            CheckpointError::Quant(msg) => write!(f, "checkpoint quant section: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            CheckpointError::Params(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<ParamLoadError> for CheckpointError {
    fn from(e: ParamLoadError) -> Self {
        match e {
            ParamLoadError::Io(io) => CheckpointError::Io(io),
            other => CheckpointError::Params(other),
        }
    }
}

/// A fully-read checkpoint: the model plus everything else the container
/// carried. [`CircuitGps::load_checkpoint`] is the model-only shorthand.
#[derive(Debug)]
pub struct Checkpoint {
    /// The model, built from the embedded (or assumed-legacy) config.
    pub model: CircuitGps,
    /// Which on-disk format the file used.
    pub format: CheckpointFormat,
    /// Named optional sections (v2 only; empty for v1/legacy files), in
    /// file order.
    pub sections: Vec<(String, Vec<u8>)>,
}

impl Checkpoint {
    /// Returns the payload of the named section, if present.
    pub fn section(&self, name: &str) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, bytes)| bytes.as_slice())
    }
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_str<W: Write>(w: &mut W, s: &str) -> io::Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())
}

fn read_str<R: Read>(r: &mut R) -> Result<String, CheckpointError> {
    let len = read_u64(r)? as usize;
    if len > 1 << 10 {
        return Err(CheckpointError::Config(format!(
            "unreasonable section name length {len}"
        )));
    }
    let mut bytes = vec![0u8; len];
    r.read_exact(&mut bytes)?;
    String::from_utf8(bytes)
        .map_err(|_| CheckpointError::Config("section name is not UTF-8".into()))
}

// Config-block field tags; see docs/checkpoint-format.md for the table.
const MPNN_NONE: u8 = 0;
const MPNN_GATED_GCN: u8 = 1;
const ATTN_NONE: u8 = 0;
const ATTN_TRANSFORMER: u8 = 1;
const ATTN_PERFORMER: u8 = 2;
const PE_NONE: u8 = 0;
const PE_XC: u8 = 1;
const PE_DRNL: u8 = 2;
const PE_RWSE: u8 = 3;
const PE_LAPPE: u8 = 4;
const PE_DSPD: u8 = 5;

/// Serializes a [`ModelConfig`] as the fixed field sequence shared by v1
/// and v2 (without the surrounding length prefix).
fn write_config_fields<W: Write>(w: &mut W, cfg: &ModelConfig) -> io::Result<()> {
    write_u64(w, cfg.hidden_dim as u64)?;
    write_u64(w, cfg.num_layers as u64)?;
    write_u64(w, cfg.heads as u64)?;
    let mpnn = match cfg.mpnn {
        MpnnKind::None => MPNN_NONE,
        MpnnKind::GatedGcn => MPNN_GATED_GCN,
    };
    w.write_all(&[mpnn])?;
    let (attn, features) = match cfg.attn {
        AttnKind::None => (ATTN_NONE, 0u64),
        AttnKind::Transformer => (ATTN_TRANSFORMER, 0),
        AttnKind::Performer { features } => (ATTN_PERFORMER, features as u64),
    };
    w.write_all(&[attn])?;
    write_u64(w, features)?;
    let (pe, k) = match cfg.pe {
        PeKind::None => (PE_NONE, 0u64),
        PeKind::Xc => (PE_XC, 0),
        PeKind::Drnl => (PE_DRNL, 0),
        PeKind::Rwse { k } => (PE_RWSE, k as u64),
        PeKind::LapPe { k } => (PE_LAPPE, k as u64),
        PeKind::Dspd => (PE_DSPD, 0),
    };
    w.write_all(&[pe])?;
    write_u64(w, k)?;
    write_u64(w, cfg.pe_dim as u64)?;
    w.write_all(&cfg.dropout.to_le_bytes())?;
    write_u64(w, cfg.seed)?;
    Ok(())
}

/// Decodes the config field sequence (shared by v1 and v2).
fn read_config_fields<R: Read>(r: &mut R) -> Result<ModelConfig, CheckpointError> {
    let hidden_dim = read_u64(r)? as usize;
    let num_layers = read_u64(r)? as usize;
    let heads = read_u64(r)? as usize;
    let mut tag = [0u8; 1];
    r.read_exact(&mut tag)?;
    let mpnn = match tag[0] {
        MPNN_NONE => MpnnKind::None,
        MPNN_GATED_GCN => MpnnKind::GatedGcn,
        t => return Err(CheckpointError::Config(format!("unknown mpnn tag {t}"))),
    };
    r.read_exact(&mut tag)?;
    let attn_tag = tag[0];
    let features = read_u64(r)? as usize;
    let attn = match attn_tag {
        ATTN_NONE => AttnKind::None,
        ATTN_TRANSFORMER => AttnKind::Transformer,
        ATTN_PERFORMER => AttnKind::Performer { features },
        t => return Err(CheckpointError::Config(format!("unknown attn tag {t}"))),
    };
    r.read_exact(&mut tag)?;
    let pe_tag = tag[0];
    let k = read_u64(r)? as usize;
    let pe = match pe_tag {
        PE_NONE => PeKind::None,
        PE_XC => PeKind::Xc,
        PE_DRNL => PeKind::Drnl,
        PE_RWSE => PeKind::Rwse { k },
        PE_LAPPE => PeKind::LapPe { k },
        PE_DSPD => PeKind::Dspd,
        t => return Err(CheckpointError::Config(format!("unknown pe tag {t}"))),
    };
    let pe_dim = read_u64(r)? as usize;
    let mut f = [0u8; 4];
    r.read_exact(&mut f)?;
    let dropout = f32::from_le_bytes(f);
    let seed = read_u64(r)?;
    Ok(ModelConfig {
        hidden_dim,
        num_layers,
        heads,
        mpnn,
        attn,
        pe,
        pe_dim,
        dropout,
        seed,
    })
}

impl CircuitGps {
    /// Writes the self-describing checkpoint container (version 2):
    /// magic, format version, body length, the model's [`ModelConfig`],
    /// every named parameter and state buffer, zero sections, and the
    /// CRC32 integrity footer. [`CircuitGps::load_checkpoint`]
    /// reconstructs an identical model from this alone.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_checkpoint<W: Write>(&self, w: W) -> Result<(), CheckpointError> {
        self.save_checkpoint_with_sections(w, &[])
    }

    /// Like [`CircuitGps::save_checkpoint`], additionally embedding the
    /// given named sections (e.g. resumable-training state under
    /// [`TRAIN_STATE_SECTION`]). Readers that only want the model ignore
    /// sections they don't recognize.
    ///
    /// If the parameter store holds int8 weight snapshots (after
    /// [`cirgps_nn::ParamStore::quantize_int8`], e.g. the CLI's
    /// `--quantize` export flag), they are appended automatically as the
    /// [`QUANT_SECTION`] and reapplied on load.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the writer.
    pub fn save_checkpoint_with_sections<W: Write>(
        &self,
        mut w: W,
        sections: &[(&str, &[u8])],
    ) -> Result<(), CheckpointError> {
        let mut body = Vec::new();
        // Length-prefixed config block so later versions can append
        // fields and still be skimmed by tooling.
        let mut cfg_block = Vec::new();
        write_config_fields(&mut cfg_block, &self.cfg)?;
        write_u64(&mut body, cfg_block.len() as u64)?;
        body.write_all(&cfg_block)?;
        self.store().save_blob(&mut body)?;
        let quant_payload =
            if self.store().has_quant() && !sections.iter().any(|(n, _)| *n == QUANT_SECTION) {
                let mut payload = Vec::new();
                self.store().save_quant_blob(&mut payload)?;
                Some(payload)
            } else {
                None
            };
        let n_sections = sections.len() + usize::from(quant_payload.is_some());
        write_u32(&mut body, n_sections as u32)?;
        for (name, payload) in sections {
            write_str(&mut body, name)?;
            write_u64(&mut body, payload.len() as u64)?;
            body.write_all(payload)?;
        }
        if let Some(payload) = &quant_payload {
            write_str(&mut body, QUANT_SECTION)?;
            write_u64(&mut body, payload.len() as u64)?;
            body.write_all(payload)?;
        }

        // The whole container is assembled in memory so the CRC can
        // cover the header too; checkpoints are MB-scale, this is fine.
        let mut out = Vec::with_capacity(body.len() + 20);
        out.extend_from_slice(CHECKPOINT_MAGIC);
        out.extend_from_slice(&CHECKPOINT_VERSION.to_le_bytes());
        out.extend_from_slice(&(body.len() as u64).to_le_bytes());
        out.extend_from_slice(&body);
        let mut crc = Crc32::new();
        crc.update(&out);
        out.extend_from_slice(&crc.finish().to_le_bytes());
        w.write_all(&out)?;
        Ok(())
    }

    /// Reads a checkpoint and constructs the model it describes.
    /// Shorthand for [`CircuitGps::load_checkpoint_full`] when the
    /// caller does not care about optional sections.
    ///
    /// # Errors
    ///
    /// See [`CircuitGps::load_checkpoint_full`].
    pub fn load_checkpoint<R: Read>(r: R) -> Result<(Self, CheckpointFormat), CheckpointError> {
        let ck = Self::load_checkpoint_full(r)?;
        Ok((ck.model, ck.format))
    }

    /// Reads a checkpoint — any supported format — and returns the model
    /// plus the container's optional sections.
    ///
    /// For the versioned container the model is built from the
    /// **embedded** config — no flags, no guessing, a non-default
    /// architecture round-trips by itself. A v2 file's CRC32 footer is
    /// verified over the raw bytes **before anything is parsed**, so a
    /// torn or bit-flipped file cannot half-load. For a legacy raw
    /// weight dump (magic `CGPS`) the model is built with
    /// [`ModelConfig::default`], which is what every legacy call site
    /// assumed; the returned [`CheckpointFormat::Legacy`] lets front
    /// ends print a deprecation warning.
    ///
    /// # Errors
    ///
    /// Returns a named [`CheckpointError`] on bad magic, a
    /// newer-than-supported version, a checksum mismatch, an invalid
    /// embedded config, or a parameter name/shape mismatch.
    pub fn load_checkpoint_full<R: Read>(mut r: R) -> Result<Checkpoint, CheckpointError> {
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic == LEGACY_MAGIC {
            let mut model = CircuitGps::new(ModelConfig::default());
            model.store_mut().load_blob(&mut r)?;
            return Ok(Checkpoint {
                model,
                format: CheckpointFormat::Legacy,
                sections: Vec::new(),
            });
        }
        if &magic != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = read_u32(&mut r)?;
        if version == 0 || version > CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: version,
                supported: CHECKPOINT_VERSION,
            });
        }
        if version == 1 {
            let model = Self::load_v1_tail(&mut r)?;
            return Ok(Checkpoint {
                model,
                format: CheckpointFormat::V1,
                sections: Vec::new(),
            });
        }

        // v2: verify the CRC over the raw bytes FIRST; only then parse.
        let body_len = read_u64(&mut r)?;
        if body_len > 1 << 33 {
            return Err(CheckpointError::Config(format!(
                "unreasonable body length {body_len}"
            )));
        }
        // read_to_end over a Take grows the buffer as bytes actually
        // arrive, so a corrupt length on a short file fails with
        // UnexpectedEof instead of a giant up-front allocation.
        let mut body = Vec::new();
        let got = (&mut r).take(body_len).read_to_end(&mut body)?;
        if (got as u64) < body_len {
            return Err(CheckpointError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                format!("checkpoint body truncated: expected {body_len} bytes, got {got}"),
            )));
        }
        let stored = read_u32(&mut r)?;
        let mut crc = Crc32::new();
        crc.update(&magic);
        crc.update(&version.to_le_bytes());
        crc.update(&body_len.to_le_bytes());
        crc.update(&body);
        let computed = crc.finish();
        if stored != computed {
            return Err(CheckpointError::ChecksumMismatch { stored, computed });
        }

        let mut br: &[u8] = &body;
        let cfg_len = read_u64(&mut br)? as usize;
        if cfg_len > 1 << 16 {
            return Err(CheckpointError::Config(format!(
                "unreasonable config block length {cfg_len}"
            )));
        }
        let mut cfg_block = vec![0u8; cfg_len];
        br.read_exact(&mut cfg_block)?;
        let cfg = read_config_fields(&mut &cfg_block[..])?;
        cfg.check().map_err(CheckpointError::Config)?;
        let mut model = CircuitGps::new(cfg);
        model.store_mut().load_blob(&mut br)?;
        let n_sections = read_u32(&mut br)?;
        if n_sections > MAX_SECTIONS {
            return Err(CheckpointError::Config(format!(
                "unreasonable section count {n_sections}"
            )));
        }
        let mut sections = Vec::with_capacity(n_sections as usize);
        for _ in 0..n_sections {
            let name = read_str(&mut br)?;
            let len = read_u64(&mut br)? as usize;
            let mut payload = vec![0u8; len.min(br.len())];
            br.read_exact(&mut payload)?;
            if payload.len() < len {
                return Err(CheckpointError::Io(io::ErrorKind::UnexpectedEof.into()));
            }
            sections.push((name, payload));
        }
        if !br.is_empty() {
            return Err(CheckpointError::Config(format!(
                "{} trailing bytes after the last section",
                br.len()
            )));
        }
        // Reapply int8 weight snapshots so a `--quantize`-exported model
        // serves quantized by default (callers wanting pure f32 clear
        // the snapshots with `store_mut().clear_quant()`).
        if let Some(payload) = sections
            .iter()
            .find(|(n, _)| n == QUANT_SECTION)
            .map(|(_, p)| p.as_slice())
        {
            model
                .store_mut()
                .load_quant_blob(payload)
                .map_err(CheckpointError::Quant)?;
        }
        Ok(Checkpoint {
            model,
            format: CheckpointFormat::V2,
            sections,
        })
    }

    /// Reads everything after the version field of a v1 container.
    fn load_v1_tail<R: Read>(r: &mut R) -> Result<Self, CheckpointError> {
        let cfg_len = read_u64(r)? as usize;
        if cfg_len > 1 << 16 {
            return Err(CheckpointError::Config(format!(
                "unreasonable config block length {cfg_len}"
            )));
        }
        let mut cfg_block = vec![0u8; cfg_len];
        r.read_exact(&mut cfg_block)?;
        let cfg = read_config_fields(&mut &cfg_block[..])?;
        cfg.check().map_err(CheckpointError::Config)?;
        let mut model = CircuitGps::new(cfg);
        model.store_mut().load_blob(r)?;
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedSample;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

    fn sample() -> PreparedSample {
        let mut b = GraphBuilder::new();
        let n1 = b.add_node(NodeType::Net, "n1");
        let p1 = b.add_node(NodeType::Pin, "p1");
        let d1 = b.add_node(NodeType::Device, "d1");
        let n2 = b.add_node(NodeType::Net, "n2");
        b.set_xc(p1, 0, 1.0);
        b.set_xc(n1, 0, 2.0);
        b.add_edge(n1, p1, EdgeType::NetPin);
        b.add_edge(p1, d1, EdgeType::DevicePin);
        b.add_edge(d1, n2, EdgeType::NetPin);
        let g = b.build();
        let g = g.with_injected_links(&[circuit_graph::Edge {
            a: n1,
            b: n2,
            ty: EdgeType::CouplingNetNet,
        }]);
        let xcn = XcNormalizer::fit(&[&g]);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 32,
            },
        );
        let sub = s.enclosing_subgraph(n1, n2);
        PreparedSample::new(sub, PeKind::Dspd, &xcn, 1.0, 0.3)
    }

    /// A config that differs from the default in every dimension the
    /// container records — the round-trip must reproduce it exactly.
    fn non_default_config() -> ModelConfig {
        ModelConfig {
            hidden_dim: 24,
            num_layers: 2,
            heads: 3,
            mpnn: MpnnKind::GatedGcn,
            attn: AttnKind::Transformer,
            pe: PeKind::Dspd,
            pe_dim: 5,
            dropout: 0.05,
            seed: 0xBEEF,
        }
    }

    /// Hand-writes the v1 container layout (magic, version 1, config
    /// block, param blob — no length, no footer) to prove old files
    /// still load.
    fn v1_bytes(model: &CircuitGps) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(CHECKPOINT_MAGIC);
        bytes.extend_from_slice(&1u32.to_le_bytes());
        let mut cfg_block = Vec::new();
        write_config_fields(&mut cfg_block, &model.cfg).unwrap();
        write_u64(&mut bytes, cfg_block.len() as u64).unwrap();
        bytes.extend_from_slice(&cfg_block);
        model.store().save_blob(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn v2_round_trip_restores_config_and_predictions_bitwise() {
        let s = sample();
        let model = CircuitGps::new(non_default_config());
        let want_link = model.predict_link(&s);
        let want_reg = model.predict_reg(&s);

        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        let (loaded, fmt) = CircuitGps::load_checkpoint(&bytes[..]).unwrap();
        assert_eq!(fmt, CheckpointFormat::V2);
        assert_eq!(loaded.cfg, model.cfg, "embedded config must round-trip");
        assert_eq!(loaded.predict_link(&s).to_bits(), want_link.to_bits());
        assert_eq!(loaded.predict_reg(&s).to_bits(), want_reg.to_bits());
    }

    #[test]
    fn v1_container_still_loads_bitwise() {
        let s = sample();
        let model = CircuitGps::new(non_default_config());
        let want = model.predict_link(&s);
        let bytes = v1_bytes(&model);
        let ck = CircuitGps::load_checkpoint_full(&bytes[..]).unwrap();
        assert_eq!(ck.format, CheckpointFormat::V1);
        assert_eq!(ck.model.cfg, model.cfg);
        assert!(ck.sections.is_empty());
        assert_eq!(ck.model.predict_link(&s).to_bits(), want.to_bits());
    }

    #[test]
    fn sections_round_trip_and_are_ignored_by_model_only_loads() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model
            .save_checkpoint_with_sections(
                &mut bytes,
                &[
                    (TRAIN_STATE_SECTION, b"state-bytes"),
                    ("quant_scales", &[1, 2, 3]),
                ],
            )
            .unwrap();
        let ck = CircuitGps::load_checkpoint_full(&bytes[..]).unwrap();
        assert_eq!(ck.format, CheckpointFormat::V2);
        assert_eq!(ck.section(TRAIN_STATE_SECTION), Some(&b"state-bytes"[..]));
        assert_eq!(ck.section("quant_scales"), Some(&[1u8, 2, 3][..]));
        assert_eq!(ck.section("missing"), None);
        // The shorthand loader must accept the same file.
        let (loaded, fmt) = CircuitGps::load_checkpoint(&bytes[..]).unwrap();
        assert_eq!(fmt, CheckpointFormat::V2);
        assert_eq!(loaded.cfg, model.cfg);
    }

    #[test]
    fn legacy_dump_still_loads_as_default_config() {
        let s = sample();
        let model = CircuitGps::new(ModelConfig::default());
        let want = model.predict_link(&s);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap(); // legacy raw dump
        let (loaded, fmt) = CircuitGps::load_checkpoint(&bytes[..]).unwrap();
        assert_eq!(fmt, CheckpointFormat::Legacy);
        assert_eq!(loaded.cfg, ModelConfig::default());
        assert_eq!(loaded.predict_link(&s).to_bits(), want.to_bits());
    }

    #[test]
    fn quant_section_round_trips_and_serves_quantized() {
        let s = sample();
        let mut model = CircuitGps::new(non_default_config());
        assert!(model.store_mut().quantize_int8() > 0);
        let want = model.predict_link(&s);

        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        let ck = CircuitGps::load_checkpoint_full(&bytes[..]).unwrap();
        assert!(ck.section(QUANT_SECTION).is_some(), "quant section written");
        assert!(ck.model.store().has_quant(), "snapshots reapplied on load");
        assert_eq!(
            ck.model.predict_link(&s).to_bits(),
            want.to_bits(),
            "quantized predictions must round-trip bitwise"
        );

        // Clearing the snapshots reverts to the pure-f32 path.
        let mut f32_model = CircuitGps::load_checkpoint_full(&bytes[..]).unwrap().model;
        f32_model.store_mut().clear_quant();
        let f32_pred = f32_model.predict_link(&s);
        assert!(f32_pred.is_finite());
    }

    #[test]
    fn checkpoint_without_quant_section_loads_pure_f32() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        let ck = CircuitGps::load_checkpoint_full(&bytes[..]).unwrap();
        assert!(ck.section(QUANT_SECTION).is_none());
        assert!(!ck.model.store().has_quant());
    }

    #[test]
    fn corrupt_quant_section_is_a_named_error_not_a_panic() {
        let model = CircuitGps::new(non_default_config());
        // The CRC footer catches random bit flips; this test targets the
        // section *parser* by writing well-framed containers whose quant
        // payload is garbage (as a buggy or malicious writer would).
        for payload in [
            &b""[..],                         // truncated: no entry count
            &[0xFF; 8][..],                   // absurd entry count
            &1u64.to_le_bytes()[..],          // one entry, then truncation
            &[1, 0, 0, 0, 0, 0, 0, 0, 3][..], // truncated mid-name
        ] {
            let mut bytes = Vec::new();
            model
                .save_checkpoint_with_sections(&mut bytes, &[(QUANT_SECTION, payload)])
                .unwrap();
            match CircuitGps::load_checkpoint_full(&bytes[..]) {
                Err(CheckpointError::Quant(msg)) => {
                    assert!(!msg.is_empty(), "quant error must explain itself")
                }
                other => panic!("payload {payload:?}: expected Quant error, got {other:?}"),
            }
        }
        // A structurally valid payload naming an unknown parameter.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&7u64.to_le_bytes());
        payload.extend_from_slice(b"no.such");
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&1.0f32.to_le_bytes());
        payload.push(5);
        let mut bytes = Vec::new();
        model
            .save_checkpoint_with_sections(&mut bytes, &[(QUANT_SECTION, &payload)])
            .unwrap();
        match CircuitGps::load_checkpoint_full(&bytes[..]) {
            Err(CheckpointError::Quant(msg)) => assert!(msg.contains("no.such"), "{msg}"),
            other => panic!("expected Quant error naming the parameter, got {other:?}"),
        }
    }

    #[test]
    fn corrupted_magic_is_a_named_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes[0] = b'X';
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::BadMagic(m)) => assert_eq!(&m, b"XGPC"),
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn future_version_is_a_named_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::UnsupportedVersion { found, supported }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
    }

    #[test]
    fn truncated_checkpoint_is_an_io_error() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model.save_checkpoint(&mut bytes).unwrap();
        bytes.truncate(bytes.len() / 2);
        assert!(matches!(
            CircuitGps::load_checkpoint(&bytes[..]),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn every_sampled_bit_flip_is_rejected_and_body_flips_name_the_checksum() {
        let model = CircuitGps::new(non_default_config());
        let mut bytes = Vec::new();
        model
            .save_checkpoint_with_sections(&mut bytes, &[(TRAIN_STATE_SECTION, &[7u8; 40])])
            .unwrap();
        let n = bytes.len();
        // Sampled positions: the whole header + early body, a stride
        // across the param blob, and the tail including the CRC footer
        // itself. (CRC32 detects ALL single-bit flips by construction —
        // `durable::tests` proves that property exhaustively; this test
        // pins the *wiring*: verify-before-parse and the named error.)
        let mut positions: Vec<usize> = (0..64.min(n)).collect();
        positions.extend((64..n.saturating_sub(64)).step_by(509));
        positions.extend(n.saturating_sub(64)..n);
        for byte in positions {
            for bit in 0..8 {
                bytes[byte] ^= 1 << bit;
                let result = CircuitGps::load_checkpoint(&bytes[..]);
                match &result {
                    Err(e) if byte >= 16 => assert!(
                        matches!(e, CheckpointError::ChecksumMismatch { .. }),
                        "flip at {byte}:{bit} (offset >= 16) must be a checksum \
                         mismatch, got {e:?}"
                    ),
                    // Header flips (magic/version/body_len) are caught
                    // by their own named checks before the CRC can run.
                    Err(_) => {}
                    Ok(_) => panic!("flip at {byte}:{bit} silently loaded"),
                }
                bytes[byte] ^= 1 << bit;
            }
        }
        // Untouched file still loads (the flips really were reverted).
        assert!(CircuitGps::load_checkpoint(&bytes[..]).is_ok());
    }

    #[test]
    fn legacy_dump_of_non_default_model_reports_shape_mismatch_by_name() {
        // The exact failure mode the self-describing container removes:
        // a legacy dump of a non-default architecture loads against the
        // assumed default config and must name the mismatched parameter
        // and both shapes instead of a bare I/O error.
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            ..ModelConfig::default()
        });
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        match CircuitGps::load_checkpoint(&bytes[..]) {
            Err(CheckpointError::Params(ParamLoadError::ShapeMismatch {
                name,
                expected,
                found,
            })) => {
                assert!(!name.is_empty());
                assert_ne!(expected, found);
                let msg = CheckpointError::Params(ParamLoadError::ShapeMismatch {
                    name: name.clone(),
                    expected,
                    found,
                })
                .to_string();
                assert!(msg.contains(&name), "{msg}");
                assert!(msg.contains("shape mismatch"), "{msg}");
            }
            other => panic!("expected a named shape mismatch, got {other:?}"),
        }
    }
}
