//! # circuitgps
//!
//! The paper's primary contribution: a few-shot graph-learning framework
//! for parasitic-capacitance prediction on AMS circuits. A hybrid
//! GraphGPS-style model (GatedGCN message passing in parallel with global
//! attention) consumes SEAL-style enclosing subgraphs with the paper's
//! DSPD positional encoding, is pre-trained on coupling link prediction,
//! and is fine-tuned (head-only or fully) for capacitance regression —
//! plus node-level ground-capacitance regression as an extension.
//!
//! ## Pipeline
//!
//! ```text
//! netlist ──ams-netlist──▶ heterogeneous graph ──subgraph-sample──▶
//! enclosing subgraphs ──graph-pe──▶ +DSPD ──circuitgps──▶
//! pre-train (link) → fine-tune (regression) → zero-shot on unseen designs
//! ```
//!
//! ## Example
//!
//! ```
//! use circuitgps::{CircuitGps, ModelConfig};
//!
//! let model = CircuitGps::new(ModelConfig {
//!     hidden_dim: 16, pe_dim: 4, heads: 2, num_layers: 1,
//!     ..ModelConfig::default()
//! });
//! assert!(model.num_params() > 0);
//! ```

#![deny(missing_docs)]

mod checkpoint;
mod config;
pub mod corpus;
mod durable;
mod infer;
pub mod interrupt;
mod metrics;
mod model;
mod prepared;
mod sweep;
mod train;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointFormat, CHECKPOINT_MAGIC, CHECKPOINT_VERSION,
    LEGACY_MAGIC, TRAIN_STATE_SECTION,
};
pub use cirgps_nn::{Backend, QuantMatrix};
pub use config::{AttnKind, FinetuneMode, ModelConfig, MpnnKind, TrainConfig};
pub use durable::{crc32, write_atomic, Crc32};
pub use infer::{InferenceSession, Query};
pub use metrics::{link_metrics, mape, reg_metrics, roc_auc, LinkMetrics, RegMetrics};
pub use model::{BatchLayout, CircuitGps};
pub use prepared::{prepare_link_dataset, prepare_node_dataset, PreparedSample};
pub use sweep::{sweep_pairs, CandidatePairs, SweepConfig, SweepSink, SweepStats, SweepTask};
pub use train::{
    evaluate_link, evaluate_regression, finetune_regression, finetune_regression_with_progress,
    predict_regression, pretrain_link, train, train_resumable, train_with_progress, EpochProgress,
    ResumableTrain, Task, TrainError, TrainHistory, TrainOutcome, TrainState,
};
