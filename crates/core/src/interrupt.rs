//! Minimal SIGINT/SIGTERM latch, keeping the zero-dependency idiom.
//!
//! `std` already links libc, so a two-symbol `extern "C"` shim is all
//! that is needed to install a handler — no `signal-hook`, no `libc`
//! crate. The handler only stores into an [`AtomicBool`] (async-signal
//! safe) and then resets the disposition to the OS default, so a
//! *second* signal kills the process immediately — the standard
//! "graceful once, forceful twice" contract.
//!
//! Consumers poll [`requested`] at natural boundaries: the training loop
//! checks between epochs (mid-epoch model/optimizer/RNG state is not a
//! consistent snapshot point), and the serve daemon's monitor thread
//! turns the latch into a graceful drain.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
mod imp {
    use super::{AtomicBool, Ordering, REQUESTED};

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    const SIG_DFL: usize = 0;

    extern "C" {
        // POSIX `signal(2)`; on glibc this is the BSD semantics
        // (handler stays installed, syscalls restart), but the handler
        // resets to SIG_DFL itself so semantics differences don't
        // matter.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_signal(sig: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
        // Second signal = operator means it: die with default semantics.
        unsafe {
            signal(sig, SIG_DFL);
        }
    }

    pub(super) static INSTALLED: AtomicBool = AtomicBool::new(false);

    pub(super) fn install() {
        if INSTALLED.swap(true, Ordering::SeqCst) {
            return;
        }
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn install() {}
}

/// Installs the SIGINT/SIGTERM handler (idempotent). On non-Unix
/// platforms this is a no-op and [`requested`] only ever fires via
/// [`trigger`].
pub fn install() {
    imp::install();
}

/// Whether an interrupt has been requested (signal received or
/// [`trigger`] called).
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// The latch itself, for consumers that take an `&AtomicBool` stop flag
/// (e.g. [`crate::train_resumable`]).
pub fn flag() -> &'static AtomicBool {
    &REQUESTED
}

/// Raises the interrupt latch programmatically — same observable effect
/// as receiving SIGINT/SIGTERM. Used by tests and available to embedders
/// that manage signals themselves.
pub fn trigger() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Clears the latch. Test-only in spirit: real consumers treat an
/// interrupt as terminal for the process.
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test fn: the latch is process-global state, and signal
    // delivery is process-wide, so splitting these into parallel test
    // threads would race on REQUESTED.
    #[test]
    fn latch_round_trip_and_signal_delivery() {
        reset();
        assert!(!requested());
        trigger();
        assert!(requested());
        reset();
        assert!(!requested());

        #[cfg(unix)]
        real_signal_sets_the_latch();
    }

    #[cfg(unix)]
    fn real_signal_sets_the_latch() {
        install();
        install();
        reset();
        extern "C" {
            fn raise(sig: i32) -> i32;
        }
        // SIGTERM's default disposition would kill the process; the
        // installed handler must latch instead. (The handler resets the
        // disposition afterwards, so re-install for any later use.)
        unsafe {
            raise(15);
        }
        assert!(requested());
        imp::INSTALLED.store(false, std::sync::atomic::Ordering::SeqCst);
        install();
        reset();
    }
}
