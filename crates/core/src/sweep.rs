//! Full-chip sweep planner: batch extraction + inference over very large
//! candidate-pair sets.
//!
//! `predict`/`serve` answer one pair at a time: extract the enclosing
//! subgraph, compute the PE, run one forward. A full-chip parasitic
//! sweep asks the same model millions of questions about **one fixed
//! graph**, and the independent-query loop wastes almost all of its
//! time recomputing work that repeats across pairs. This module plans
//! the whole workload:
//!
//! 1. **Chunking** — pairs are consumed from a streaming iterator in
//!    windows of [`SweepConfig::chunk`]; only one window of prepared
//!    samples and results is ever resident, so memory is bounded by the
//!    window, not the pair count ([`SweepStats::peak_resident`] proves
//!    it).
//! 2. **Shared extraction** — one [`SweepSampler`] serves every pair,
//!    reusing visited stamps, the local-relabel map, and the BFS
//!    scratch across the sweep (see `subgraph_sample::SweepSampler`).
//! 3. **Neighborhood deduplication** — the model's forward pass depends
//!    only on the subgraph's *content* (types, features, arcs, anchor
//!    distances), never on parent node ids. Pairs whose enclosing
//!    subgraphs are content-identical — abundant in regular layouts,
//!    where cell neighborhoods repeat thousands of times — share one
//!    prepared sample: PE (including LapPE), normalization and the
//!    forward pass run once per *neighborhood class* and fan out to
//!    every matching pair.
//! 4. **Size-binned batching** — unique samples are ordered by node
//!    count before being packed into the block-diagonal batch
//!    machinery, keeping tiles homogeneous; [`SweepConfig::threads`]
//!    splits the batch across worker threads.
//!
//! Every step is bitwise-safe: sweep output for a pair equals
//! [`InferenceSession::predict_links`] / `predict_couplings` (and hence
//! `cirgps predict`) for that pair, which the unit tests and the CI
//! smoke leg assert on the exact bits.
//!
//! [`InferenceSession::predict_links`]:
//! crate::InferenceSession::predict_links

use std::collections::HashMap;

use circuit_graph::{CircuitGraph, NodeType};
use subgraph_sample::{SamplerConfig, Subgraph, SweepSampler, XcNormalizer};

use crate::model::CircuitGps;
use crate::prepared::PreparedSample;

/// Which per-pair quantity a sweep predicts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepTask {
    /// Link-existence probability (`predict_link_batch`).
    Link,
    /// Normalized coupling capacitance (`predict_reg_batch`).
    Coupling,
}

/// Sweep planner parameters.
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Predicted quantity.
    pub task: SweepTask,
    /// Enclosing-subgraph extraction parameters (must match the
    /// single-query path for the parity contract to hold).
    pub sampler: SamplerConfig,
    /// Pairs per planned window: the bounded-memory knob. Results are
    /// emitted (and memory released) once per window.
    pub chunk: usize,
    /// Worker threads for the batched forward (1 = inline).
    pub threads: usize,
    /// Deduplicate content-identical subgraphs within a window (exact
    /// byte comparison — semantics-free, disable only for measurement).
    pub dedup: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            task: SweepTask::Link,
            sampler: SamplerConfig::default(),
            chunk: 4096,
            threads: 1,
            dedup: true,
        }
    }
}

/// What a finished (or aborted) sweep did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Pairs consumed from the input.
    pub pairs: usize,
    /// Windows processed (`ceil(pairs / chunk)` unless aborted).
    pub chunks: usize,
    /// Forward passes actually run (== unique neighborhood classes when
    /// dedup is on, == `pairs` when off).
    pub unique_forwards: usize,
    /// Pairs answered from a window-local duplicate (no extra forward).
    pub dedup_hits: usize,
    /// Largest number of prepared samples resident at once — bounded by
    /// [`SweepConfig::chunk`] by construction.
    pub peak_resident: usize,
    /// True if the emit callback stopped the sweep early.
    pub aborted: bool,
}

/// Serializes the forward-relevant content of a subgraph: everything
/// except the parent node ids. Two subgraphs with equal keys produce
/// bitwise-identical predictions (the forward pass never reads
/// `Subgraph::nodes`), and comparison is by full byte equality, so a
/// hash collision cannot merge distinct neighborhoods.
fn neighborhood_key(sub: &Subgraph) -> Vec<u8> {
    let n = sub.num_nodes();
    let e = sub.src.len();
    let mut key = Vec::with_capacity(16 + n * (1 + 4 * circuit_graph::XC_DIM / 4 + 2) + e * 9);
    key.extend_from_slice(&(n as u32).to_le_bytes());
    key.extend_from_slice(&(e as u32).to_le_bytes());
    key.push(sub.num_anchors as u8);
    for &t in &sub.node_types {
        key.push(t as u8);
    }
    for &x in &sub.xc {
        key.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    for &s in &sub.src {
        key.extend_from_slice(&(s as u32).to_le_bytes());
    }
    for &d in &sub.dst {
        key.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for &t in &sub.edge_types {
        key.push(t as u8);
    }
    for &d in &sub.dist_a {
        key.push(d as u8);
    }
    for &d in &sub.dist_b {
        key.push(d as u8);
    }
    key
}

/// Runs the batched forward over `uniques` in size-binned order, split
/// across `threads` workers, returning one prediction per unique sample
/// (in `uniques` order).
fn predict_uniques(
    model: &CircuitGps,
    uniques: &[PreparedSample],
    task: SweepTask,
    threads: usize,
) -> Vec<f32> {
    // Size binning: order by node count so each tile packs graphs of
    // similar size. Per-graph outputs are independent of batch
    // composition (block-diagonal attention, per-graph pooling), so any
    // order and any split is bitwise-equivalent.
    let mut order: Vec<usize> = (0..uniques.len()).collect();
    order.sort_by_key(|&i| (uniques[i].sub.num_nodes(), i));

    let run = |idxs: &[usize]| -> Vec<f32> {
        let refs: Vec<&PreparedSample> = idxs.iter().map(|&i| &uniques[i]).collect();
        match task {
            SweepTask::Link => model.predict_link_batch(&refs),
            SweepTask::Coupling => model.predict_reg_batch(&refs),
        }
    };

    let mut out = vec![0.0f32; uniques.len()];
    let workers = threads.max(1).min(order.len().max(1));
    if workers <= 1 {
        for (&i, p) in order.iter().zip(run(&order)) {
            out[i] = p;
        }
        return out;
    }
    let per = order.len().div_ceil(workers);
    let slices: Vec<&[usize]> = order.chunks(per).collect();
    let results: Vec<Vec<f32>> = std::thread::scope(|scope| {
        let handles: Vec<_> = slices
            .iter()
            .map(|idxs| scope.spawn(move || run(idxs)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (idxs, preds) in slices.iter().zip(results) {
        for (&i, p) in idxs.iter().zip(preds) {
            out[i] = p;
        }
    }
    out
}

/// Per-window output sink for [`sweep_pairs`]: called with the window's
/// pairs (in input order) and the aligned predictions; return `false`
/// to abort the sweep.
pub type SweepSink<'a> = dyn FnMut(&[(u32, u32)], &[f32]) -> bool + 'a;

/// Executes a planned sweep over `pairs`, streaming results through
/// `emit` one window at a time.
///
/// `emit` receives the window's pairs (in input order) and the aligned
/// predictions; returning `false` aborts the sweep (the partial stats
/// are still returned, with [`SweepStats::aborted`] set). The
/// per-window contract bounds memory: nothing from a window outlives
/// its `emit` call.
///
/// Parity contract: for every pair, the emitted value is bitwise-equal
/// to what [`InferenceSession`](crate::InferenceSession) (and therefore
/// `cirgps predict`) produces for that pair over the same graph, model
/// and sampler config.
///
/// # Panics
///
/// Panics if a pair repeats an anchor (`a == b`) or references a node
/// id outside `graph`, or if [`SweepConfig::chunk`] is zero.
pub fn sweep_pairs(
    model: &CircuitGps,
    xcn: &XcNormalizer,
    graph: &CircuitGraph,
    pairs: impl IntoIterator<Item = (u32, u32)>,
    cfg: &SweepConfig,
    emit: &mut SweepSink<'_>,
) -> SweepStats {
    assert!(cfg.chunk > 0, "sweep chunk must be positive");
    let mut stats = SweepStats::default();
    let mut sampler = SweepSampler::new(graph, cfg.sampler);
    let mut scratch = Subgraph {
        nodes: Vec::new(),
        node_types: Vec::new(),
        xc: Vec::new(),
        src: Vec::new(),
        dst: Vec::new(),
        edge_types: Vec::new(),
        num_anchors: 2,
        dist_a: Vec::new(),
        dist_b: Vec::new(),
    };

    let mut iter = pairs.into_iter();
    let mut window: Vec<(u32, u32)> = Vec::with_capacity(cfg.chunk);
    // Window-local state, cleared per chunk (the bounded-memory window).
    let mut memo: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut uniques: Vec<PreparedSample> = Vec::new();
    let mut pair_class: Vec<usize> = Vec::with_capacity(cfg.chunk);

    loop {
        window.clear();
        while window.len() < cfg.chunk {
            match iter.next() {
                Some(p) => window.push(p),
                None => break,
            }
        }
        if window.is_empty() {
            break;
        }

        memo.clear();
        uniques.clear();
        pair_class.clear();
        for &(a, b) in &window {
            sampler.extract_into(a, b, &mut scratch);
            let class = if cfg.dedup {
                let key = neighborhood_key(&scratch);
                match memo.get(&key) {
                    Some(&c) => {
                        stats.dedup_hits += 1;
                        c
                    }
                    None => {
                        let c = uniques.len();
                        memo.insert(key, c);
                        uniques.push(PreparedSample::new(
                            scratch.clone(),
                            model.cfg.pe,
                            xcn,
                            1.0,
                            0.0,
                        ));
                        c
                    }
                }
            } else {
                uniques.push(PreparedSample::new(
                    scratch.clone(),
                    model.cfg.pe,
                    xcn,
                    1.0,
                    0.0,
                ));
                uniques.len() - 1
            };
            pair_class.push(class);
        }

        stats.peak_resident = stats.peak_resident.max(uniques.len());
        stats.unique_forwards += uniques.len();
        let class_preds = predict_uniques(model, &uniques, cfg.task, cfg.threads);
        let values: Vec<f32> = pair_class.iter().map(|&c| class_preds[c]).collect();

        stats.pairs += window.len();
        stats.chunks += 1;
        if !emit(&window, &values) {
            stats.aborted = true;
            break;
        }
    }
    stats
}

/// Streaming candidate-pair enumeration for a full-chip sweep: every
/// unordered pair `(a, b)` with `a < b`, both endpoints couplable (not
/// devices), and `b` within two hops of `a` — the neighborhood that
/// SPF coupling candidates live in.
///
/// Deterministic: anchors ascend, partners follow adjacency order
/// (distance 1 first, then distance 2). `per_node_cap` bounds partners
/// per anchor (0 = unlimited) so hub nets cannot blow up the pair
/// count quadratically; `max_pairs` caps the total (0 = unlimited).
#[derive(Debug)]
pub struct CandidatePairs<'g> {
    graph: &'g CircuitGraph,
    per_node_cap: usize,
    max_pairs: usize,
    next_anchor: u32,
    emitted: usize,
    buf: Vec<(u32, u32)>,
    pos: usize,
    stamp: Vec<u32>,
    epoch: u32,
}

impl<'g> CandidatePairs<'g> {
    /// Creates the enumeration over `graph`.
    pub fn new(graph: &'g CircuitGraph, per_node_cap: usize, max_pairs: usize) -> Self {
        CandidatePairs {
            graph,
            per_node_cap,
            max_pairs,
            next_anchor: 0,
            emitted: 0,
            buf: Vec::new(),
            pos: 0,
            stamp: vec![u32::MAX; graph.num_nodes()],
            epoch: 0,
        }
    }

    fn couplable(&self, v: u32) -> bool {
        self.graph.node_type(v) != NodeType::Device
    }

    /// Fills `buf` with anchor `a`'s partners (assumes `a` couplable).
    fn fill(&mut self, a: u32) {
        self.buf.clear();
        self.pos = 0;
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = u32::MAX);
            self.epoch = 0;
        }
        self.stamp[a as usize] = self.epoch;
        let cap = if self.per_node_cap == 0 {
            usize::MAX
        } else {
            self.per_node_cap
        };
        let (nbrs, _) = self.graph.adjacency(a);
        // Distance 1, in adjacency order.
        for &w in nbrs {
            if self.buf.len() >= cap {
                return;
            }
            if self.stamp[w as usize] != self.epoch {
                self.stamp[w as usize] = self.epoch;
                if w > a && self.couplable(w) {
                    self.buf.push((a, w));
                }
            }
        }
        // Distance 2, in adjacency order of each distance-1 node.
        for &w in nbrs {
            for &b in self.graph.adjacency(w).0 {
                if self.buf.len() >= cap {
                    return;
                }
                if self.stamp[b as usize] != self.epoch {
                    self.stamp[b as usize] = self.epoch;
                    if b > a && self.couplable(b) {
                        self.buf.push((a, b));
                    }
                }
            }
        }
    }
}

impl Iterator for CandidatePairs<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        if self.max_pairs != 0 && self.emitted >= self.max_pairs {
            return None;
        }
        loop {
            if self.pos < self.buf.len() {
                let p = self.buf[self.pos];
                self.pos += 1;
                self.emitted += 1;
                return Some(p);
            }
            let a = self.next_anchor;
            if (a as usize) >= self.graph.num_nodes() {
                return None;
            }
            self.next_anchor += 1;
            if self.couplable(a) {
                self.fill(a);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AttnKind, ModelConfig, MpnnKind};
    use crate::infer::InferenceSession;
    use circuit_graph::{Edge, EdgeType, GraphBuilder};

    /// Two pin clusters joined by a device path, with injected coupling
    /// links — the same shape as the inference tests, so sweeps see a
    /// mix of repeated (dedupable) and distinct neighborhoods.
    fn toy_graph_and_links() -> (CircuitGraph, Vec<(u32, u32)>) {
        let mut b = GraphBuilder::new();
        let cluster = |b: &mut GraphBuilder, tag: &str| -> Vec<u32> {
            let hub = b.add_node(NodeType::Net, &format!("{tag}hub"));
            let mut out = vec![hub];
            for i in 0..6 {
                let p = b.add_node(NodeType::Pin, &format!("{tag}p{i}"));
                b.set_xc(p, 0, (i % 3) as f32);
                b.add_edge(hub, p, EdgeType::NetPin);
                out.push(p);
            }
            out
        };
        let c1 = cluster(&mut b, "a");
        let c2 = cluster(&mut b, "b");
        let mut prev = c1[0];
        for i in 0..4 {
            let mid = b.add_node(NodeType::Device, &format!("m{i}"));
            b.add_edge(prev, mid, EdgeType::DevicePin);
            prev = mid;
        }
        b.add_edge(prev, c2[0], EdgeType::DevicePin);
        let g = b.build();

        let mut links = Vec::new();
        for i in 1..5 {
            links.push((c1[i], c1[i + 1]));
            links.push((c2[i], c2[i + 1]));
            links.push((c1[i], c2[i]));
            links.push((c1[i + 1], c2[i]));
            links.push((c1[1], c2[i + 1]));
        }
        let injected: Vec<Edge> = links
            .iter()
            .map(|&(a, b2)| Edge {
                a,
                b: b2,
                ty: EdgeType::CouplingPinPin,
            })
            .collect();
        (g.with_injected_links(&injected), links)
    }

    fn toy_model() -> CircuitGps {
        CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            mpnn: MpnnKind::GatedGcn,
            attn: AttnKind::Performer { features: 8 },
            ..Default::default()
        })
    }

    fn collect_sweep(
        model: &CircuitGps,
        xcn: &XcNormalizer,
        g: &CircuitGraph,
        pairs: &[(u32, u32)],
        cfg: &SweepConfig,
    ) -> (Vec<f32>, SweepStats) {
        let mut got: Vec<f32> = Vec::new();
        let stats = sweep_pairs(
            model,
            xcn,
            g,
            pairs.iter().copied(),
            cfg,
            &mut |_, values| {
                got.extend_from_slice(values);
                true
            },
        );
        (got, stats)
    }

    #[test]
    fn sweep_matches_session_bitwise_for_both_tasks() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let sampler = SamplerConfig {
            hops: 1,
            max_nodes: 64,
        };
        let model = toy_model();
        let mut session =
            InferenceSession::shared(&model, xcn.clone(), &g, sampler).with_batch_size(4);
        let want_link = session.predict_links(&links);
        let want_cap = session.predict_couplings(&links);

        for (task, want) in [
            (SweepTask::Link, &want_link),
            (SweepTask::Coupling, &want_cap),
        ] {
            for threads in [1usize, 3] {
                let cfg = SweepConfig {
                    task,
                    sampler,
                    chunk: 7, // forces several windows over 20 pairs
                    threads,
                    dedup: true,
                };
                let (got, stats) = collect_sweep(&model, &xcn, &g, &links, &cfg);
                assert_eq!(got.len(), links.len());
                assert_eq!(stats.pairs, links.len());
                for (i, (a, b)) in got.iter().zip(want).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{task:?} threads={threads} pair {i}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn dedup_is_semantics_free_and_reduces_forwards() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        // Repeat the pair list: every repeated pair must dedup within a
        // window and answer identically.
        let mut pairs = links.clone();
        pairs.extend_from_slice(&links);
        let base = SweepConfig {
            task: SweepTask::Link,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            chunk: pairs.len(),
            threads: 1,
            dedup: true,
        };
        let model = toy_model();
        let (with, stats_with) = collect_sweep(&model, &xcn, &g, &pairs, &base);
        let (without, stats_without) = collect_sweep(
            &model,
            &xcn,
            &g,
            &pairs,
            &SweepConfig {
                dedup: false,
                ..base
            },
        );
        for (a, b) in with.iter().zip(&without) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert_eq!(stats_without.unique_forwards, pairs.len());
        assert!(
            stats_with.unique_forwards <= links.len(),
            "duplicated input must not add forwards: {} > {}",
            stats_with.unique_forwards,
            links.len()
        );
        assert!(stats_with.dedup_hits >= links.len());
    }

    #[test]
    fn window_bounds_resident_samples_and_preserves_order() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let model = toy_model();
        let cfg = SweepConfig {
            task: SweepTask::Link,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            chunk: 4,
            threads: 1,
            dedup: true,
        };
        let mut seen_pairs: Vec<(u32, u32)> = Vec::new();
        let stats = sweep_pairs(
            &model,
            &xcn,
            &g,
            links.iter().copied(),
            &cfg,
            &mut |pairs, values| {
                assert!(pairs.len() <= 4);
                assert_eq!(pairs.len(), values.len());
                seen_pairs.extend_from_slice(pairs);
                true
            },
        );
        assert_eq!(seen_pairs, links, "emitted in input order");
        assert_eq!(stats.chunks, links.len().div_ceil(4));
        assert!(
            stats.peak_resident <= 4,
            "resident window {} exceeds chunk 4",
            stats.peak_resident
        );
    }

    #[test]
    fn emit_false_aborts_after_current_window() {
        let (g, links) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let model = toy_model();
        let cfg = SweepConfig {
            chunk: 5,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            ..Default::default()
        };
        let mut calls = 0;
        let stats = sweep_pairs(
            &model,
            &xcn,
            &g,
            links.iter().copied(),
            &cfg,
            &mut |_, _| {
                calls += 1;
                false
            },
        );
        assert_eq!(calls, 1);
        assert!(stats.aborted);
        assert_eq!(stats.pairs, 5);
        assert_eq!(stats.chunks, 1);
    }

    #[test]
    fn candidate_pairs_are_valid_capped_and_deterministic() {
        let (g, _) = toy_graph_and_links();
        let all: Vec<(u32, u32)> = CandidatePairs::new(&g, 0, 0).collect();
        assert!(!all.is_empty());
        for &(a, b) in &all {
            assert!(a < b, "({a},{b}) not ordered");
            assert_ne!(g.node_type(a), NodeType::Device);
            assert_ne!(g.node_type(b), NodeType::Device);
            let two_hop = g.bfs_distances(a, 2);
            assert!(two_hop[b as usize] <= 2, "({a},{b}) farther than 2 hops");
        }
        let mut seen = std::collections::HashSet::new();
        assert!(all.iter().all(|p| seen.insert(*p)), "duplicate pair");
        // Every couplable 2-hop neighbor pair is present when uncapped.
        for a in 0..g.num_nodes() as u32 {
            if g.node_type(a) == NodeType::Device {
                continue;
            }
            let dist = g.bfs_distances(a, 2);
            for b in (a + 1)..g.num_nodes() as u32 {
                if g.node_type(b) != NodeType::Device && dist[b as usize] <= 2 {
                    assert!(seen.contains(&(a, b)), "missing candidate ({a},{b})");
                }
            }
        }
        assert_eq!(
            all,
            CandidatePairs::new(&g, 0, 0).collect::<Vec<_>>(),
            "non-deterministic enumeration"
        );
        // Caps.
        let capped: Vec<(u32, u32)> = CandidatePairs::new(&g, 2, 0).collect();
        for a in capped.iter().map(|p| p.0) {
            assert!(capped.iter().filter(|p| p.0 == a).count() <= 2);
        }
        assert_eq!(CandidatePairs::new(&g, 0, 3).count(), 3);
    }

    #[test]
    fn sweeping_enumerated_pairs_streams_end_to_end() {
        let (g, _) = toy_graph_and_links();
        let xcn = XcNormalizer::fit(&[&g]);
        let model = toy_model();
        let cfg = SweepConfig {
            chunk: 8,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            ..Default::default()
        };
        let mut count = 0usize;
        let stats = sweep_pairs(
            &model,
            &xcn,
            &g,
            CandidatePairs::new(&g, 4, 0),
            &cfg,
            &mut |pairs, values| {
                count += pairs.len();
                assert!(values.iter().all(|p| (0.0..=1.0).contains(p)));
                true
            },
        );
        assert_eq!(stats.pairs, count);
        assert!(stats.unique_forwards <= stats.pairs);
        assert!(stats.peak_resident <= 8);
    }
}
