//! Grammar-corpus loading: turns a compact spec string into ready
//! `(netlist, SPF)` design pairs for multi-design pretraining — without
//! any file ever touching disk.
//!
//! The CLI accepts `--grammar FAMILY[:MAX_SIZE[:COUNT[:MIN_SIZE]]]` on
//! the training commands; this module owns the spec syntax and the
//! enumeration plumbing so every consumer (pretrain, eval, benches,
//! tests) loads the exact same corpus for the same `(spec, seed)`.

use ams_datagen::enumerate::{enumerate_designs, EnumerateConfig};
use ams_datagen::Family;
use ams_netlist::{Netlist, SpfFile};

/// One loaded corpus design.
#[derive(Debug, Clone)]
pub struct CorpusDesign {
    /// The grammar design name (`G_CHAIN_INV_N17`, ...).
    pub name: String,
    /// Flattened primitive netlist.
    pub netlist: Netlist,
    /// Extracted parasitic ground truth.
    pub spf: SpfFile,
}

/// A parsed `--grammar` corpus specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusSpec {
    /// Restrict to one family (`None` = all six).
    pub family: Option<Family>,
    /// Upper size-estimate bound per design.
    pub max_size: u64,
    /// Lower size-estimate bound per design.
    pub min_size: u64,
    /// How many designs to take from the window.
    pub count: usize,
}

impl CorpusSpec {
    /// Parses `FAMILY[:MAX_SIZE[:COUNT[:MIN_SIZE]]]`; `FAMILY` is a
    /// grammar family name or `all`. Defaults: `MAX_SIZE` 4000,
    /// `COUNT` 8, `MIN_SIZE` 0.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn parse(spec: &str) -> Result<CorpusSpec, String> {
        let mut parts = spec.split(':');
        let family = match parts.next().unwrap_or("") {
            "all" => None,
            name => Some(Family::parse(name).ok_or_else(|| {
                format!(
                    "unknown grammar family {name:?} (expected all, chain, tree, bus, \
                     fabric, array or sandwich)"
                )
            })?),
        };
        let mut int = |what: &str, default: u64| -> Result<u64, String> {
            match parts.next() {
                None | Some("") => Ok(default),
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("bad {what} {v:?} in grammar spec {spec:?}")),
            }
        };
        let max_size = int("max size", 4_000)?;
        let count = int("count", 8)? as usize;
        let min_size = int("min size", 0)?;
        if let Some(extra) = parts.next() {
            return Err(format!("trailing field {extra:?} in grammar spec {spec:?}"));
        }
        if count == 0 {
            return Err(format!("grammar spec {spec:?} asks for 0 designs"));
        }
        Ok(CorpusSpec {
            family,
            max_size,
            min_size,
            count,
        })
    }

    /// Enumerates the corpus in canonical order with per-design derived
    /// extraction seeds. Deterministic for a given `(self, seed)`.
    pub fn load(&self, seed: u64) -> Vec<CorpusDesign> {
        let cfg = EnumerateConfig {
            family: self.family,
            seed,
            max_size: self.max_size,
            min_size: self.min_size,
            count: Some(self.count),
        };
        enumerate_designs(&cfg)
            .map(|g| {
                let spf = g.extract();
                CorpusDesign {
                    name: g.design.name.clone(),
                    netlist: g.design.netlist,
                    spf,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_and_full_form_parse() {
        let s = CorpusSpec::parse("all").unwrap();
        assert_eq!(s.family, None);
        assert_eq!((s.max_size, s.count, s.min_size), (4_000, 8, 0));
        let s = CorpusSpec::parse("chain:900:3:200").unwrap();
        assert_eq!(s.family, Some(Family::Chain));
        assert_eq!((s.max_size, s.count, s.min_size), (900, 3, 200));
        assert!(CorpusSpec::parse("nope").is_err());
        assert!(CorpusSpec::parse("chain:x").is_err());
        assert!(CorpusSpec::parse("chain:900:0").is_err());
        assert!(CorpusSpec::parse("chain:900:3:0:9").is_err());
    }

    #[test]
    fn loaded_corpus_is_deterministic_and_labeled() {
        let spec = CorpusSpec::parse("bus:2000:3").unwrap();
        let a = spec.load(11);
        let b = spec.load(11);
        assert_eq!(a.len(), 3);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.spf.to_text(), y.spf.to_text());
            assert!(!x.spf.coupling_caps.is_empty(), "{}: no labels", x.name);
        }
        // A different seed keeps the structures but re-jitters parasitics.
        let c = spec.load(12);
        assert_eq!(a[0].name, c[0].name);
        assert_ne!(a[0].spf.to_text(), c[0].spf.to_text());
    }
}
