//! The CircuitGPS model: type/PE encoders, a stack of GPS layers
//! (parallel MPNN + global attention, Section III-D) and the two task
//! heads (link-prediction head for pre-training, regression head with
//! circuit-statistics injection per eq. (6)–(7)).

use std::sync::Arc;

use circuit_graph::{NodeType, PinKind, XC_DIM};
use cirgps_nn::{
    Activation, BatchNorm1d, EdgeIndex, Embedding, GatedGcn, Linear, Mlp, MultiHeadAttention,
    ParamStore, PerformerAttention, Tape, Tensor, Var,
};
use graph_pe::PeFeatures;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::config::{AttnKind, ModelConfig, MpnnKind};
use crate::prepared::PreparedSample;

/// Positional-encoding encoder: turns [`PeFeatures`] into a dense
/// `N × 2·pe_dim` block concatenated before the node-type embedding.
#[derive(Debug, Clone)]
pub(crate) enum PeEncoder {
    None,
    /// DSPD: two distance-embedding tables `D0`, `D1` (eq. (1)).
    Pair {
        d0: Embedding,
        d1: Embedding,
    },
    /// DRNL: one label-embedding table.
    Single {
        emb: Embedding,
    },
    /// Dense PEs (RWSE / LapPE / XC): linear projection.
    Dense {
        lin: Linear,
    },
}

/// One branch of global attention.
#[derive(Debug, Clone)]
pub(crate) enum AttnBlock {
    Mha(MultiHeadAttention),
    Performer(PerformerAttention),
}

/// One GPS layer (eq. (2)–(5)): parallel MPNN + attention, fused by a
/// 2-layer MLP, with residual connections and batch norm.
#[derive(Debug, Clone)]
pub(crate) struct GpsLayer {
    pub(crate) mpnn: Option<GatedGcn>,
    pub(crate) attn: Option<AttnBlock>,
    pub(crate) bn_attn: Option<BatchNorm1d>,
    pub(crate) mlp: Mlp,
    pub(crate) bn_mlp: BatchNorm1d,
    pub(crate) dropout: f32,
}

impl GpsLayer {
    fn forward(
        &self,
        tape: &mut Tape,
        x: Var,
        e: Var,
        idx: &EdgeIndex,
        blocks: &Arc<Vec<(usize, usize)>>,
        edge_counts: &[usize],
    ) -> (Var, Var) {
        let (x_m, e_out) = match &self.mpnn {
            Some(g) if !idx.is_empty() => {
                let (xm, em) = g.forward(tape, x, e, idx);
                (Some(xm), em)
            }
            _ => (None, e),
        };
        // Per-graph MPNN gate: a zero-edge block's rows must combine
        // exactly as they would solo (no MPNN branch), even when packed
        // with edge-bearing graphs. The mask is built only for such
        // mixed packs — never in ordinary training, where every
        // enclosing subgraph carries edges.
        let gate = (x_m.is_some() && edge_counts.contains(&0)).then(|| {
            let n = tape.shape(x).0;
            let mut mask = vec![0.0f32; n];
            for (&(r0, len), &c) in blocks.iter().zip(edge_counts) {
                if c > 0 {
                    mask[r0..r0 + len].fill(1.0);
                }
            }
            mask
        });
        let x_a = match (&self.attn, &self.bn_attn) {
            (Some(block), Some(bn)) => {
                let h = match block {
                    AttnBlock::Mha(a) => a.forward_blocks(tape, x, blocks.clone()),
                    AttnBlock::Performer(a) => a.forward_blocks(tape, x, blocks.clone()),
                };
                // The attention output (a Linear output, whose backward
                // never reads its own value) is single-use: consume it in
                // the residual add. `x` stays readable for the backbone.
                let h = tape.dropout(h, self.dropout);
                let s = tape.add_inplace(h, x);
                Some(bn.forward(tape, s))
            }
            _ => None,
        };
        let combined = match (x_m, x_a) {
            // Both branch outputs are single-use BN/residual results.
            (Some(m), Some(a)) => match &gate {
                Some(mask) => {
                    let mk = tape.input(Tensor::col(mask));
                    let mm = tape.mul_colvec(m, mk);
                    tape.add_inplace(mm, a)
                }
                None => tape.add_inplace(m, a),
            },
            (Some(m), None) => match &gate {
                Some(mask) => {
                    let inv: Vec<f32> = mask.iter().map(|&v| 1.0 - v).collect();
                    let mk = tape.input(Tensor::col(mask));
                    let ik = tape.input(Tensor::col(&inv));
                    let mm = tape.mul_colvec(m, mk);
                    let xx = tape.mul_colvec(x, ik);
                    tape.add_inplace(mm, xx)
                }
                None => m,
            },
            (None, Some(a)) => a,
            (None, None) => x,
        };
        // `combined` must stay readable: the MLP's fused-linear backward
        // reads its input value. Only the MLP output is consumed.
        let h = self.mlp.forward(tape, combined);
        let h = tape.dropout(h, self.dropout);
        let s = tape.add_inplace(h, combined);
        let x_out = self.bn_mlp.forward(tape, s);
        (x_out, e_out)
    }
}

/// Node-to-graph assignment of a block-diagonally packed batch.
#[derive(Debug, Clone)]
pub struct BatchLayout {
    /// Graph id per concatenated node row.
    pub graph_ids: Arc<Vec<usize>>,
    /// Node count per graph.
    pub counts: Vec<f32>,
    /// Row index of each graph's first (anchor) node.
    pub anchor_rows: Vec<usize>,
}

impl BatchLayout {
    /// Per-graph `(first_row, row_count)` blocks of the packed batch
    /// (the block-diagonal attention layout).
    pub fn blocks(&self) -> Vec<(usize, usize)> {
        self.anchor_rows
            .iter()
            .zip(&self.counts)
            .map(|(&r0, &c)| (r0, c as usize))
            .collect()
    }
}

/// Concatenated node/edge inputs of a block-diagonally packed batch,
/// shared by the taped [`CircuitGps::embed_batch`] and the tape-free
/// inference path so both assemble identical buffers.
pub(crate) struct BatchInputs {
    pub(crate) total_n: usize,
    pub(crate) node_types: Vec<usize>,
    pub(crate) graph_ids: Vec<usize>,
    pub(crate) src: Vec<usize>,
    pub(crate) dst: Vec<usize>,
    pub(crate) edge_types: Vec<usize>,
    pub(crate) anchor_rows: Vec<usize>,
    /// Per-graph directed-edge counts (for the per-graph MPNN gate).
    pub(crate) edge_counts: Vec<usize>,
}

pub(crate) fn assemble_batch(samples: &[&PreparedSample]) -> BatchInputs {
    assert!(!samples.is_empty(), "embed_batch needs at least one sample");
    let total_n: usize = samples.iter().map(|s| s.sub.num_nodes()).sum();
    let mut node_types = Vec::with_capacity(total_n);
    let mut graph_ids = Vec::with_capacity(total_n);
    let mut src = Vec::new();
    let mut dst = Vec::new();
    let mut edge_types = Vec::new();
    let mut anchor_rows = Vec::with_capacity(samples.len());
    let mut edge_counts = Vec::with_capacity(samples.len());
    let mut offset = 0usize;
    for (gi, s) in samples.iter().enumerate() {
        node_types.extend(s.sub.node_types.iter().copied());
        graph_ids.extend(std::iter::repeat_n(gi, s.sub.num_nodes()));
        src.extend(s.sub.src.iter().map(|&x| x + offset));
        dst.extend(s.sub.dst.iter().map(|&x| x + offset));
        edge_types.extend(s.sub.edge_types.iter().copied());
        anchor_rows.push(offset);
        edge_counts.push(s.sub.src.len());
        offset += s.sub.num_nodes();
    }
    BatchInputs {
        total_n,
        node_types,
        graph_ids,
        src,
        dst,
        edge_types,
        anchor_rows,
        edge_counts,
    }
}

/// Concatenated categorical-pair PE codes (DSPD).
///
/// # Panics
///
/// Panics if a sample's PE is not [`PeFeatures::CategoricalPair`].
pub(crate) fn collect_pe_pair(
    samples: &[&PreparedSample],
    total_n: usize,
) -> (Vec<usize>, Vec<usize>) {
    let mut a = Vec::with_capacity(total_n);
    let mut b = Vec::with_capacity(total_n);
    for s in samples {
        match &s.pe {
            PeFeatures::CategoricalPair { a: pa, b: pb, .. } => {
                a.extend_from_slice(pa);
                b.extend_from_slice(pb);
            }
            other => panic!(
                "PE features {other:?} do not match the model's encoder (DSPD); \
                 prepare the dataset with the model's PeKind"
            ),
        }
    }
    (a, b)
}

/// Concatenated categorical PE codes (DRNL).
///
/// # Panics
///
/// Panics if a sample's PE is not [`PeFeatures::Categorical`].
pub(crate) fn collect_pe_single(samples: &[&PreparedSample], total_n: usize) -> Vec<usize> {
    let mut codes = Vec::with_capacity(total_n);
    for s in samples {
        match &s.pe {
            PeFeatures::Categorical { codes: c, .. } => codes.extend_from_slice(c),
            other => panic!(
                "PE features {other:?} do not match the model's encoder (DRNL); \
                 prepare the dataset with the model's PeKind"
            ),
        }
    }
    codes
}

/// Concatenated dense PE features (RWSE / LapPE / XC), pool-backed.
///
/// # Panics
///
/// Panics if a sample's PE is not dense with width `dim`.
pub(crate) fn collect_pe_dense(
    samples: &[&PreparedSample],
    total_n: usize,
    dim: usize,
) -> Vec<f32> {
    // Pool-backed: the consumer recycles the buffer, so per-batch PE
    // assembly stops reallocating.
    let mut data = cirgps_nn::pool::take_capacity(total_n * dim);
    for s in samples {
        match &s.pe {
            PeFeatures::Dense { data: d, dim: sd } if *sd == dim => data.extend_from_slice(d),
            other => panic!(
                "PE features {other:?} do not match the model's encoder \
                 (dense, dim {dim}); prepare the dataset with the model's PeKind"
            ),
        }
    }
    data
}

/// Regression head with per-type circuit-statistics projection (eq. (6)).
#[derive(Debug, Clone)]
pub(crate) struct RegHead {
    pub(crate) net_proj: Linear,
    pub(crate) dev_proj: Linear,
    pub(crate) pin_emb: Embedding,
    pub(crate) mlp: Mlp,
}

/// The CircuitGPS model.
///
/// Owns its [`ParamStore`]; forward passes borrow the store immutably so
/// minibatch samples can be evaluated on worker threads.
#[derive(Debug)]
pub struct CircuitGps {
    /// The configuration the model was built with.
    pub cfg: ModelConfig,
    pub(crate) store: ParamStore,
    pub(crate) pe_enc: PeEncoder,
    pub(crate) node_type_emb: Embedding,
    pub(crate) edge_type_emb: Embedding,
    pub(crate) layers: Vec<GpsLayer>,
    pub(crate) link_head: Mlp,
    pub(crate) reg_head: RegHead,
}

impl CircuitGps {
    /// Builds a model with freshly initialized parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`ModelConfig::validate`]).
    pub fn new(cfg: ModelConfig) -> Self {
        cfg.validate();
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden_dim;
        let pe_total = match cfg.pe {
            graph_pe::PeKind::None => 0,
            _ => 2 * cfg.pe_dim,
        };

        let pe_enc = match cfg.pe {
            graph_pe::PeKind::None => PeEncoder::None,
            graph_pe::PeKind::Dspd => PeEncoder::Pair {
                d0: Embedding::new(
                    &mut store,
                    "enc.pe.d0",
                    graph_pe::DIST_CLASSES,
                    cfg.pe_dim,
                    &mut rng,
                ),
                d1: Embedding::new(
                    &mut store,
                    "enc.pe.d1",
                    graph_pe::DIST_CLASSES,
                    cfg.pe_dim,
                    &mut rng,
                ),
            },
            graph_pe::PeKind::Drnl => {
                // DRNL table size is the clamped-distance worst case; keep
                // in sync with graph_pe::drnl.
                let worst = {
                    let ur = subgraph_sample::UNREACHABLE as usize;
                    let half = (2 * (ur - 1)) / 2;
                    2 + ur + half * (half - 1)
                };
                PeEncoder::Single {
                    emb: Embedding::new(&mut store, "enc.pe.drnl", worst, 2 * cfg.pe_dim, &mut rng),
                }
            }
            graph_pe::PeKind::Rwse { k } => PeEncoder::Dense {
                lin: Linear::new(&mut store, "enc.pe.rwse", k, 2 * cfg.pe_dim, true, &mut rng),
            },
            graph_pe::PeKind::LapPe { k } => PeEncoder::Dense {
                lin: Linear::new(&mut store, "enc.pe.lap", k, 2 * cfg.pe_dim, true, &mut rng),
            },
            graph_pe::PeKind::Xc => PeEncoder::Dense {
                lin: Linear::new(
                    &mut store,
                    "enc.pe.xc",
                    XC_DIM,
                    2 * cfg.pe_dim,
                    true,
                    &mut rng,
                ),
            },
        };

        let node_type_emb = Embedding::new(
            &mut store,
            "enc.node_type",
            NodeType::COUNT,
            d - pe_total,
            &mut rng,
        );
        let edge_type_emb = Embedding::new(
            &mut store,
            "enc.edge_type",
            circuit_graph::EdgeType::COUNT,
            d,
            &mut rng,
        );

        let layers = (0..cfg.num_layers)
            .map(|l| {
                let name = format!("gps.{l}");
                let mpnn = match cfg.mpnn {
                    MpnnKind::GatedGcn => Some(GatedGcn::new(
                        &mut store,
                        &format!("{name}.mpnn"),
                        d,
                        cfg.dropout,
                        &mut rng,
                    )),
                    MpnnKind::None => None,
                };
                let (attn, bn_attn) = match cfg.attn {
                    AttnKind::Transformer => (
                        Some(AttnBlock::Mha(MultiHeadAttention::new(
                            &mut store,
                            &format!("{name}.attn"),
                            d,
                            cfg.heads,
                            &mut rng,
                        ))),
                        Some(BatchNorm1d::new(&mut store, &format!("{name}.bn_attn"), d)),
                    ),
                    AttnKind::Performer { features } => (
                        Some(AttnBlock::Performer(PerformerAttention::new(
                            &mut store,
                            &format!("{name}.attn"),
                            d,
                            cfg.heads,
                            features,
                            &mut rng,
                        ))),
                        Some(BatchNorm1d::new(&mut store, &format!("{name}.bn_attn"), d)),
                    ),
                    AttnKind::None => (None, None),
                };
                GpsLayer {
                    mpnn,
                    attn,
                    bn_attn,
                    mlp: Mlp::new(
                        &mut store,
                        &format!("{name}.mlp"),
                        &[d, 2 * d, d],
                        Activation::Relu,
                        cfg.dropout,
                        &mut rng,
                    ),
                    bn_mlp: BatchNorm1d::new(&mut store, &format!("{name}.bn_mlp"), d),
                    dropout: cfg.dropout,
                }
            })
            .collect();

        let link_head = Mlp::new(
            &mut store,
            "head_link.mlp",
            &[d, d, 1],
            Activation::Relu,
            cfg.dropout,
            &mut rng,
        );
        let reg_head = RegHead {
            net_proj: Linear::new(&mut store, "head_reg.net", XC_DIM, d, true, &mut rng),
            dev_proj: Linear::new(&mut store, "head_reg.dev", XC_DIM, d, true, &mut rng),
            pin_emb: Embedding::new(&mut store, "head_reg.pin", PinKind::COUNT, d, &mut rng),
            mlp: Mlp::new(
                &mut store,
                "head_reg.mlp",
                &[d, d, 1],
                Activation::Relu,
                cfg.dropout,
                &mut rng,
            ),
        };

        CircuitGps {
            cfg,
            store,
            pe_enc,
            node_type_emb,
            edge_type_emb,
            layers,
            link_head,
            reg_head,
        }
    }

    /// The parameter store (borrow for forward passes).
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable parameter store (for the optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Number of trainable scalar parameters (Table III's `#Param.`).
    pub fn num_params(&self) -> usize {
        self.store.num_trainable()
    }

    /// Freezes encoders and GPS layers for head-only fine-tuning.
    /// Returns the number of frozen tensors.
    pub fn freeze_backbone(&mut self) -> usize {
        self.store.set_trainable_by_prefix("enc.", false)
            + self.store.set_trainable_by_prefix("gps.", false)
    }

    /// Unfreezes every parameter (undo [`CircuitGps::freeze_backbone`]).
    pub fn unfreeze_all(&mut self) {
        self.store.set_trainable_by_prefix("", true);
        // Performer projections must stay frozen.
        self.store.set_trainable_by_prefix_proj_frozen();
    }

    /// Runs the encoder + GPS stack over a *batch* of subgraphs packed
    /// block-diagonally (the GraphGPS batching scheme: batch norm sees
    /// every node of the minibatch, pooling is per-graph segment mean,
    /// and global attention is **block-diagonal** — each graph attends
    /// only to its own nodes, exactly like the tape-free inference
    /// engine, so training and serving share one semantics).
    ///
    /// Returns the concatenated node features and the per-node graph ids.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty or a sample's PE does not match the
    /// model's configured [`graph_pe::PeKind`].
    pub fn embed_batch(&self, tape: &mut Tape, samples: &[&PreparedSample]) -> (Var, BatchLayout) {
        let inputs = assemble_batch(samples);
        let total_n = inputs.total_n;
        let counts: Vec<f32> = samples.iter().map(|s| s.sub.num_nodes() as f32).collect();
        let layout = BatchLayout {
            graph_ids: Arc::new(inputs.graph_ids),
            counts,
            anchor_rows: inputs.anchor_rows,
        };
        // One derivation of the block-diagonal layout for both engines
        // (the tape-free path calls the same accessor).
        let blocks = Arc::new(layout.blocks());
        let edge_counts = inputs.edge_counts;

        // Positional encoding block.
        let mut parts: Vec<Var> = Vec::with_capacity(3);
        match &self.pe_enc {
            PeEncoder::None => {}
            PeEncoder::Pair { d0, d1 } => {
                let (a, b) = collect_pe_pair(samples, total_n);
                parts.push(d0.forward(tape, &a));
                parts.push(d1.forward(tape, &b));
            }
            PeEncoder::Single { emb } => {
                let codes = collect_pe_single(samples, total_n);
                parts.push(emb.forward(tape, &codes));
            }
            PeEncoder::Dense { lin } => {
                // Pool-backed buffer; the tape recycles it on drop.
                let data = collect_pe_dense(samples, total_n, lin.in_dim());
                let x = tape.input(Tensor::from_vec(total_n, lin.in_dim(), data));
                parts.push(lin.forward(tape, x));
            }
        }
        parts.push(self.node_type_emb.forward(tape, &inputs.node_types));
        let mut x = if parts.len() == 1 {
            parts[0]
        } else {
            tape.concat_cols(&parts)
        };

        let idx = EdgeIndex {
            src: Arc::new(inputs.src),
            dst: Arc::new(inputs.dst),
        };
        let mut e = if inputs.edge_types.is_empty() {
            tape.input(Tensor::zeros(0, self.cfg.hidden_dim))
        } else {
            self.edge_type_emb.forward(tape, &inputs.edge_types)
        };
        for layer in &self.layers {
            let (nx, ne) = layer.forward(tape, x, e, &idx, &blocks, &edge_counts);
            x = nx;
            e = ne;
        }

        (x, layout)
    }

    /// Per-graph segment mean pooling.
    fn segment_mean(&self, tape: &mut Tape, x: Var, layout: &BatchLayout) -> Var {
        let b = layout.counts.len();
        let sums = tape.scatter_add(x, layout.graph_ids.clone(), b);
        let inv: Vec<f32> = layout.counts.iter().map(|&c| 1.0 / c.max(1.0)).collect();
        let inv = tape.input(Tensor::col(&inv));
        tape.mul_colvec(sums, inv)
    }

    /// Link-existence logits for a batch (`B × 1`).
    ///
    /// Per Observation 1, the link head uses *only* structural embeddings
    /// (no circuit statistics).
    pub fn link_logits_batch(&self, tape: &mut Tape, samples: &[&PreparedSample]) -> Var {
        let (xl, layout) = self.embed_batch(tape, samples);
        let pooled = self.segment_mean(tape, xl, &layout);
        self.link_head.forward(tape, pooled)
    }

    /// Regression outputs in `[0, 1]` for a batch (`B × 1`), using the
    /// task head with circuit statistics injected per eq. (6)–(7).
    pub fn reg_outputs_batch(&self, tape: &mut Tape, samples: &[&PreparedSample]) -> Var {
        let (xl, layout) = self.embed_batch(tape, samples);
        let total_n: usize = samples.iter().map(|s| s.sub.num_nodes()).sum();

        let mut xc_data = cirgps_nn::pool::take_capacity(total_n * XC_DIM);
        for s in samples {
            xc_data.extend_from_slice(&s.xc_norm);
        }
        let xc = tape.input(Tensor::from_vec(total_n, XC_DIM, xc_data));

        // Group global node indices by type.
        let mut net_idx = Vec::new();
        let mut dev_idx = Vec::new();
        let mut pin_idx = Vec::new();
        let mut pin_codes = Vec::new();
        let mut base = 0usize;
        for s in samples {
            for (i, &t) in s.sub.node_types.iter().enumerate() {
                let gidx = base + i;
                match t {
                    t if t == NodeType::Net.code() => net_idx.push(gidx),
                    t if t == NodeType::Device.code() => dev_idx.push(gidx),
                    _ => {
                        pin_idx.push(gidx);
                        pin_codes.push(s.pin_codes[i]);
                    }
                }
            }
            base += s.sub.num_nodes();
        }

        // C: per-type projection scattered back to node order (eq. (6)).
        // Each accumulation consumes the previous `c` buffer in place.
        let mut c = tape.input(Tensor::zeros(total_n, self.cfg.hidden_dim));
        for (idx, proj) in [
            (&net_idx, &self.reg_head.net_proj),
            (&dev_idx, &self.reg_head.dev_proj),
        ] {
            if idx.is_empty() {
                continue;
            }
            let rows = tape.gather(xc, Arc::new(idx.clone()));
            let proj_rows = proj.forward(tape, rows);
            let scattered = tape.scatter_add(proj_rows, Arc::new(idx.clone()), total_n);
            c = tape.add_inplace(c, scattered);
        }
        if !pin_idx.is_empty() {
            let emb = self.reg_head.pin_emb.forward(tape, &pin_codes);
            let scattered = tape.scatter_add(emb, Arc::new(pin_idx), total_n);
            c = tape.add_inplace(c, scattered);
        }

        // XH = Pool(XL + C) (eq. (7)) plus an anchor skip-connection: the
        // target node's own row is added to the pooled readout. Without
        // it, mean pooling over 2-hop node-task subgraphs dilutes the
        // anchor whose capacitance is being predicted (see DESIGN.md).
        let sum = tape.add_inplace(c, xl);
        let pooled = self.segment_mean(tape, sum, &layout);
        let anchors = tape.gather(sum, Arc::new(layout.anchor_rows.clone()));
        let readout = tape.add_inplace(anchors, pooled);
        let out = self.reg_head.mlp.forward(tape, readout);
        tape.sigmoid(out)
    }

    /// Mean BCE pre-training loss over a batch.
    pub fn loss_link_batch(&self, tape: &mut Tape, samples: &[&PreparedSample]) -> Var {
        let logits = self.link_logits_batch(tape, samples);
        let labels: Vec<f32> = samples.iter().map(|s| s.label).collect();
        tape.bce_with_logits(logits, &labels)
    }

    /// Mean L1 regression loss over a batch.
    pub fn loss_reg_batch(&self, tape: &mut Tape, samples: &[&PreparedSample]) -> Var {
        let outs = self.reg_outputs_batch(tape, samples);
        let targets: Vec<f32> = samples.iter().map(|s| s.target).collect();
        tape.l1_loss(outs, &targets)
    }

    /// Runs the encoder + GPS stack for one subgraph (`N × d`).
    pub fn embed(&self, tape: &mut Tape, s: &PreparedSample) -> Var {
        self.embed_batch(tape, &[s]).0
    }

    /// Link-existence logit for one sample (`1 × 1`).
    pub fn link_logit(&self, tape: &mut Tape, s: &PreparedSample) -> Var {
        self.link_logits_batch(tape, &[s])
    }

    /// Regression output for one sample (`1 × 1`).
    pub fn reg_output(&self, tape: &mut Tape, s: &PreparedSample) -> Var {
        self.reg_outputs_batch(tape, &[s])
    }

    /// BCE pre-training loss for one sample.
    pub fn loss_link(&self, tape: &mut Tape, s: &PreparedSample) -> Var {
        self.loss_link_batch(tape, &[s])
    }

    /// L1 regression loss for one sample.
    pub fn loss_reg(&self, tape: &mut Tape, s: &PreparedSample) -> Var {
        self.loss_reg_batch(tape, &[s])
    }

    /// Link-existence probability (evaluation mode).
    pub fn predict_link(&self, s: &PreparedSample) -> f32 {
        let mut tape = Tape::new(&self.store, false, 0);
        let logit = self.link_logit(&mut tape, s);
        let z = tape.value(logit).item();
        1.0 / (1.0 + (-z).exp())
    }

    /// Normalized capacitance prediction (evaluation mode).
    pub fn predict_reg(&self, s: &PreparedSample) -> f32 {
        let mut tape = Tape::new(&self.store, false, 0);
        let out = self.reg_output(&mut tape, s);
        tape.value(out).item()
    }

    /// Serializes all parameters to a writer in the **legacy** raw-dump
    /// format (magic `CGPS`, no embedded config). Prefer
    /// [`CircuitGps::save_checkpoint`], whose container records the
    /// [`ModelConfig`] so the file is loadable without out-of-band
    /// knowledge of the architecture.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save<W: std::io::Write>(&self, w: W) -> std::io::Result<()> {
        self.store.save(w)
    }

    /// Loads raw parameters from a reader into this model (must have
    /// been built with the same [`ModelConfig`]); the in-memory
    /// counterpart of [`CircuitGps::save`]. For files on disk prefer
    /// [`CircuitGps::load_checkpoint`], which reconstructs the model
    /// from the embedded config and also accepts this legacy format.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors or architecture mismatch (the error message
    /// names the first mismatched parameter and both shapes).
    pub fn load<R: std::io::Read>(&mut self, r: R) -> std::io::Result<()> {
        self.store.load(r)
    }
}

/// Helper trait impl: keep Performer random projections frozen after a
/// global unfreeze.
trait FreezeProj {
    fn set_trainable_by_prefix_proj_frozen(&mut self);
}

impl FreezeProj for ParamStore {
    fn set_trainable_by_prefix_proj_frozen(&mut self) {
        let ids: Vec<_> = self
            .iter()
            .filter(|(_, name, _)| name.ends_with(".proj"))
            .map(|(id, _, _)| id)
            .collect();
        for id in ids {
            self.set_trainable(id, false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prepared::PreparedSample;
    use circuit_graph::{EdgeType, GraphBuilder};
    use cirgps_nn::GradStore;
    use graph_pe::PeKind;
    use subgraph_sample::{SamplerConfig, SubgraphSampler, XcNormalizer};

    fn sample_with(pe: PeKind) -> PreparedSample {
        let mut b = GraphBuilder::new();
        let n1 = b.add_node(NodeType::Net, "n1");
        let p1 = b.add_node(NodeType::Pin, "p1");
        let d1 = b.add_node(NodeType::Device, "d1");
        let p2 = b.add_node(NodeType::Pin, "p2");
        let n2 = b.add_node(NodeType::Net, "n2");
        b.set_xc(p1, 0, 1.0);
        b.set_xc(p2, 0, 0.0);
        b.set_xc(n1, 0, 3.0);
        b.add_edge(n1, p1, EdgeType::NetPin);
        b.add_edge(p1, d1, EdgeType::DevicePin);
        b.add_edge(d1, p2, EdgeType::DevicePin);
        b.add_edge(p2, n2, EdgeType::NetPin);
        let g = b.build();
        let g = g.with_injected_links(&[circuit_graph::Edge {
            a: n1,
            b: n2,
            ty: EdgeType::CouplingNetNet,
        }]);
        let xcn = XcNormalizer::fit(&[&g]);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 32,
            },
        );
        let sub = s.enclosing_subgraph(n1, n2);
        PreparedSample::new(sub, pe, &xcn, 1.0, 0.42)
    }

    fn configs_under_test() -> Vec<ModelConfig> {
        let base = ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            ..Default::default()
        };
        vec![
            ModelConfig {
                mpnn: MpnnKind::GatedGcn,
                attn: AttnKind::None,
                ..base.clone()
            },
            ModelConfig {
                mpnn: MpnnKind::None,
                attn: AttnKind::Transformer,
                ..base.clone()
            },
            ModelConfig {
                mpnn: MpnnKind::GatedGcn,
                attn: AttnKind::Performer { features: 8 },
                ..base.clone()
            },
        ]
    }

    #[test]
    fn forward_shapes_for_all_layer_configs() {
        let s = sample_with(PeKind::Dspd);
        for cfg in configs_under_test() {
            let model = CircuitGps::new(cfg.clone());
            let mut tape = Tape::new(model.store(), false, 0);
            let logit = model.link_logit(&mut tape, &s);
            assert_eq!(tape.shape(logit), (1, 1), "{cfg:?}");
            let mut tape2 = Tape::new(model.store(), false, 0);
            let reg = model.reg_output(&mut tape2, &s);
            let v = tape2.value(reg).item();
            assert!((0.0..=1.0).contains(&v), "{cfg:?} produced {v}");
        }
    }

    #[test]
    fn forward_works_for_all_pe_kinds() {
        for pe in PeKind::TABLE2 {
            let s = sample_with(pe);
            let model = CircuitGps::new(ModelConfig {
                hidden_dim: 16,
                pe_dim: 4,
                heads: 2,
                num_layers: 1,
                pe,
                ..Default::default()
            });
            let p = model.predict_link(&s);
            assert!(p.is_finite() && (0.0..=1.0).contains(&p), "{pe:?} -> {p}");
        }
    }

    #[test]
    #[should_panic(expected = "do not match the model's encoder")]
    fn mismatched_pe_panics() {
        let s = sample_with(PeKind::Drnl);
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 1,
            pe: PeKind::Dspd,
            ..Default::default()
        });
        let _ = model.predict_link(&s);
    }

    #[test]
    fn gradients_flow_to_heads_and_backbone() {
        let s = sample_with(PeKind::Dspd);
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            ..Default::default()
        });
        let mut tape = Tape::new(model.store(), true, 1);
        let loss = model.loss_link(&mut tape, &s);
        let mut grads = GradStore::new(model.store());
        tape.backward(loss, &mut grads);
        for prefix in ["enc.pe.d0", "enc.node_type", "gps.0.mpnn", "head_link"] {
            let hit = model
                .store()
                .iter()
                .any(|(id, name, _)| name.starts_with(prefix) && grads.get(id).is_some());
            assert!(hit, "no gradient under {prefix}");
        }
    }

    #[test]
    fn head_only_freeze_blocks_backbone_grads() {
        let s = sample_with(PeKind::Dspd);
        let mut model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 1,
            ..Default::default()
        });
        let frozen = model.freeze_backbone();
        assert!(frozen > 0);
        let mut grads = GradStore::new(model.store());
        {
            let mut tape = Tape::new(model.store(), true, 1);
            let loss = model.loss_reg(&mut tape, &s);
            tape.backward(loss, &mut grads);
        }
        let backbone_hit = model.store().iter().any(|(id, name, _)| {
            (name.starts_with("enc.") || name.starts_with("gps.")) && grads.get(id).is_some()
        });
        assert!(!backbone_hit, "frozen backbone received gradients");
        let head_hit = model
            .store()
            .iter()
            .any(|(id, name, _)| name.starts_with("head_reg") && grads.get(id).is_some());
        assert!(head_hit, "head should train");
        model.unfreeze_all();
        assert!(model.num_params() > 0);
    }

    #[test]
    fn mixed_zero_edge_pack_trains_through_per_graph_gate() {
        // A pack mixing zero-edge and edge-bearing subgraphs exercises
        // the taped per-graph MPNN gate: the loss must stay finite and
        // gradients must still reach MPNN, attention and the heads.
        let normal = sample_with(PeKind::Dspd);
        let zero = {
            let mut b = GraphBuilder::new();
            let _n1 = b.add_node(NodeType::Net, "n1");
            let iso = b.add_node(NodeType::Net, "iso");
            let g = b.build();
            let xcn = XcNormalizer::fit(&[&g]);
            let mut s = SubgraphSampler::new(
                &g,
                SamplerConfig {
                    hops: 2,
                    max_nodes: 8,
                },
            );
            PreparedSample::new(s.node_subgraph(iso), PeKind::Dspd, &xcn, 0.0, 0.1)
        };
        assert_eq!(zero.sub.src.len(), 0, "expected a zero-edge subgraph");
        let model = CircuitGps::new(ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 2,
            ..Default::default()
        });
        let mut tape = Tape::new(model.store(), true, 1);
        let loss = model.loss_link_batch(&mut tape, &[&normal, &zero, &normal]);
        assert!(tape.value(loss).item().is_finite());
        let mut grads = GradStore::new(model.store());
        tape.backward(loss, &mut grads);
        for prefix in ["gps.0.mpnn", "gps.0.attn", "head_link"] {
            let hit = model
                .store()
                .iter()
                .any(|(id, name, _)| name.starts_with(prefix) && grads.get(id).is_some());
            assert!(hit, "no gradient under {prefix}");
        }
    }

    #[test]
    fn save_load_round_trip_preserves_predictions() {
        let s = sample_with(PeKind::Dspd);
        let cfg = ModelConfig {
            hidden_dim: 16,
            pe_dim: 4,
            heads: 2,
            num_layers: 1,
            ..Default::default()
        };
        let model = CircuitGps::new(cfg.clone());
        let p1 = model.predict_link(&s);
        let mut bytes = Vec::new();
        model.save(&mut bytes).unwrap();
        let mut model2 = CircuitGps::new(ModelConfig { seed: 999, ..cfg });
        assert_ne!(model2.predict_link(&s), p1);
        model2.load(&bytes[..]).unwrap();
        let p2 = model2.predict_link(&s);
        assert!((p1 - p2).abs() < 1e-6, "{p1} vs {p2}");
    }
}
