//! Pre-computed per-sample inputs: positional encodings and normalized
//! circuit statistics are computed once, not per epoch.

use circuit_graph::{NodeType, XC_DIM};
use graph_pe::{compute_pe, PeFeatures, PeKind};
use rayon::prelude::*;
use subgraph_sample::{LinkDataset, NodeDataset, Subgraph, XcNormalizer};

/// A training/evaluation sample with every model input materialized.
#[derive(Debug, Clone)]
pub struct PreparedSample {
    /// The subgraph structure.
    pub sub: Subgraph,
    /// Positional-encoding features.
    pub pe: PeFeatures,
    /// Min-max normalized `XC`, row-major `N × XC_DIM`.
    pub xc_norm: Vec<f32>,
    /// Pin-kind code per node (0 for non-pin nodes), for the head's pin
    /// embedding (eq. (6) third case).
    pub pin_codes: Vec<usize>,
    /// Binary link label (1 positive / 0 negative); 1.0 for node tasks.
    pub label: f32,
    /// Regression target in `[0, 1]` (normalized capacitance).
    pub target: f32,
}

impl PreparedSample {
    /// Builds a prepared sample from a subgraph and task targets.
    pub fn new(
        sub: Subgraph,
        pe_kind: PeKind,
        xcn: &XcNormalizer,
        label: f32,
        target: f32,
    ) -> PreparedSample {
        let pe = compute_pe(&sub, pe_kind);
        let xc_norm = xcn.transform(&sub.xc);
        let pin_codes = sub
            .node_types
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                if t == NodeType::Pin.code() {
                    (sub.xc[i * XC_DIM] as usize).min(circuit_graph::PinKind::COUNT - 1)
                } else {
                    0
                }
            })
            .collect();
        PreparedSample {
            sub,
            pe,
            xc_norm,
            pin_codes,
            label,
            target,
        }
    }
}

/// Prepares a link dataset for a given PE, normalizing capacitances with
/// `cap_encode` (pass `|_| 0.0` for pure link prediction).
pub fn prepare_link_dataset(
    ds: &LinkDataset,
    pe_kind: PeKind,
    xcn: &XcNormalizer,
    cap_encode: impl Fn(f64) -> f32 + Sync,
) -> Vec<PreparedSample> {
    ds.samples
        .par_iter()
        .map(|s| {
            PreparedSample::new(
                s.subgraph.clone(),
                pe_kind,
                xcn,
                s.link.label,
                cap_encode(s.link.cap),
            )
        })
        .collect()
}

/// Prepares a node dataset (ground-capacitance regression).
pub fn prepare_node_dataset(
    ds: &NodeDataset,
    pe_kind: PeKind,
    xcn: &XcNormalizer,
    cap_encode: impl Fn(f64) -> f32 + Sync,
) -> Vec<PreparedSample> {
    ds.samples
        .par_iter()
        .map(|s| PreparedSample::new(s.subgraph.clone(), pe_kind, xcn, 1.0, cap_encode(s.cap)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder};
    use subgraph_sample::{SamplerConfig, SubgraphSampler};

    fn tiny_prepared(pe: PeKind) -> PreparedSample {
        let mut b = GraphBuilder::new();
        let n = b.add_node(NodeType::Net, "n");
        let p = b.add_node(NodeType::Pin, "p");
        let d = b.add_node(NodeType::Device, "d");
        b.set_xc(p, 0, 1.0); // gate pin
        b.set_xc(n, 0, 5.0);
        b.add_edge(n, p, EdgeType::NetPin);
        b.add_edge(p, d, EdgeType::DevicePin);
        let g = b.build();
        let xcn = XcNormalizer::fit(&[&g]);
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 2,
                max_nodes: 16,
            },
        );
        let sub = s.enclosing_subgraph(n, p);
        PreparedSample::new(sub, pe, &xcn, 1.0, 0.5)
    }

    #[test]
    fn pin_codes_only_on_pins() {
        let p = tiny_prepared(PeKind::Dspd);
        for (i, &t) in p.sub.node_types.iter().enumerate() {
            if t != NodeType::Pin.code() {
                assert_eq!(p.pin_codes[i], 0);
            } else {
                assert_eq!(p.pin_codes[i], 1, "gate pin code");
            }
        }
    }

    #[test]
    fn xc_is_normalized() {
        let p = tiny_prepared(PeKind::None);
        assert!(p.xc_norm.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn pe_matches_kind() {
        assert!(matches!(
            tiny_prepared(PeKind::Dspd).pe,
            PeFeatures::CategoricalPair { .. }
        ));
        assert!(matches!(
            tiny_prepared(PeKind::Drnl).pe,
            PeFeatures::Categorical { .. }
        ));
        assert!(matches!(
            tiny_prepared(PeKind::Rwse { k: 4 }).pe,
            PeFeatures::Dense { .. }
        ));
    }
}
