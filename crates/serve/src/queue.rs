//! A bounded MPMC queue built on `std::sync::{Mutex, Condvar}`, with the
//! one compound operation the micro-batcher needs: an atomically drained
//! *batch pop* that waits up to a deadline for the batch to fill and
//! never mixes items of different kinds (see
//! [`BoundedQueue::pop_batch_by`]).
//!
//! Producers (HTTP connection threads) use the all-or-nothing
//! [`BoundedQueue::try_push_all`]: a request's queries either enqueue
//! together or are rejected together, so backpressure can be reported as
//! one clean `503` instead of a half-enqueued request.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer FIFO queue.
///
/// Closing the queue ([`BoundedQueue::close`]) wakes every blocked
/// consumer; once closed *and* drained, [`BoundedQueue::pop_batch_by`]
/// returns `None`, which is the worker-thread exit signal.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    capacity: usize,
    not_empty: Condvar,
}

impl<T> std::fmt::Debug for BoundedQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BoundedQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(capacity.min(1024)),
                closed: false,
            }),
            capacity,
            not_empty: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A consumer panicking mid-pop cannot leave the queue in an
        // inconsistent state (every mutation is a complete push/pop), so
        // poisoning is ignored, parking_lot-style.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Number of queued items right now (a snapshot — other threads may
    /// push/pop immediately after).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty right now (snapshot, like
    /// [`BoundedQueue::len`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of queued items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Enqueues all of `items`, or none of them.
    ///
    /// Fails with [`PushError::Full`] when fewer than `items.len()` slots
    /// are free (backpressure: the caller turns this into a `503`), and
    /// with [`PushError::Closed`] after [`BoundedQueue::close`]. The
    /// rejected items are handed back in the error.
    pub fn try_push_all(&self, items: Vec<T>) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(items));
        }
        if inner.items.len() + items.len() > self.capacity {
            return Err(PushError::Full(items));
        }
        inner.items.extend(items);
        drop(inner);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Closes the queue: future pushes fail, blocked consumers wake, and
    /// once the backlog drains [`BoundedQueue::pop_batch_by`] returns
    /// `None`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.not_empty.notify_all();
    }

    /// Atomically drains one *kind-pure* batch, dynamic-batching style.
    ///
    /// Blocks until at least one item is available (or the queue is
    /// closed and empty, returning `None`). The first item fixes the
    /// batch's kind (via `kind_of`) and starts the `max_wait` window;
    /// the batch is then grown until one of three flush conditions:
    ///
    /// * **max-batch flush** — `max` items collected;
    /// * **timeout flush** — `max_wait` elapsed since the batch opened;
    /// * **kind flush** — the next queued item has a different kind
    ///   (it stays queued for the next batch, preserving FIFO order —
    ///   link and capacitance queries are never packed together).
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    pub fn pop_batch_by<K: PartialEq>(
        &self,
        max: usize,
        max_wait: Duration,
        kind_of: impl Fn(&T) -> K,
    ) -> Option<Vec<T>> {
        assert!(max > 0, "batch size must be positive");
        let mut inner = self.lock();
        loop {
            if let Some(first) = inner.items.pop_front() {
                let kind = kind_of(&first);
                let mut batch = vec![first];
                let deadline = Instant::now() + max_wait;
                'grow: while batch.len() < max {
                    while inner.items.is_empty() {
                        if inner.closed {
                            break 'grow;
                        }
                        let now = Instant::now();
                        if now >= deadline {
                            break 'grow;
                        }
                        let (guard, _) = self
                            .not_empty
                            .wait_timeout(inner, deadline - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        inner = guard;
                    }
                    match inner.items.front() {
                        Some(next) if kind_of(next) == kind => {
                            batch.push(inner.items.pop_front().expect("front checked"));
                        }
                        _ => break 'grow,
                    }
                }
                return Some(batch);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .not_empty
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Why [`BoundedQueue::try_push_all`] rejected a push; carries the items
/// back to the caller.
pub enum PushError<T> {
    /// Not enough free slots for the whole push (backpressure).
    Full(Vec<T>),
    /// The queue was closed (server shutting down).
    Closed(Vec<T>),
}

impl<T> std::fmt::Debug for PushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushError::Full(v) => write!(f, "Full({} items)", v.len()),
            PushError::Closed(v) => write!(f, "Closed({} items)", v.len()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NO_WAIT: Duration = Duration::ZERO;

    #[test]
    fn max_batch_flush_drains_exactly_max_and_keeps_the_rest() {
        let q = BoundedQueue::new(64);
        q.try_push_all((0..10).collect()).unwrap();
        let batch = q.pop_batch_by(8, Duration::from_secs(5), |_| 0u8).unwrap();
        assert_eq!(batch, (0..8).collect::<Vec<_>>());
        assert_eq!(q.len(), 2, "items beyond max stay queued");
        // Even with a generous wait, a full queue never waits: the batch
        // fills from the backlog immediately.
        let rest = q.pop_batch_by(8, NO_WAIT, |_| 0u8).unwrap();
        assert_eq!(rest, vec![8, 9]);
    }

    #[test]
    fn timeout_flush_returns_partial_batch() {
        let q = BoundedQueue::new(64);
        q.try_push_all(vec![1, 2]).unwrap();
        let t0 = Instant::now();
        let batch = q
            .pop_batch_by(8, Duration::from_millis(20), |_| 0u8)
            .unwrap();
        assert_eq!(batch, vec![1, 2]);
        assert!(
            t0.elapsed() >= Duration::from_millis(20),
            "partial batch must wait out the window before flushing"
        );
        assert!(q.is_empty());
    }

    #[test]
    fn mixed_kinds_are_never_packed_into_one_batch() {
        // Kinds modelled as the parity of the item.
        let q = BoundedQueue::new(64);
        q.try_push_all(vec![0, 2, 1, 4, 6]).unwrap();
        let kind = |v: &i32| v % 2;
        assert_eq!(q.pop_batch_by(8, NO_WAIT, kind).unwrap(), vec![0, 2]);
        assert_eq!(q.pop_batch_by(8, NO_WAIT, kind).unwrap(), vec![1]);
        assert_eq!(q.pop_batch_by(8, NO_WAIT, kind).unwrap(), vec![4, 6]);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_full_backpressure_is_all_or_nothing() {
        let q = BoundedQueue::new(4);
        q.try_push_all(vec![1, 2, 3]).unwrap();
        match q.try_push_all(vec![4, 5]) {
            Err(PushError::Full(items)) => assert_eq!(items, vec![4, 5]),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.len(), 3, "rejected push must not partially enqueue");
        q.try_push_all(vec![4]).unwrap();
        assert_eq!(q.len(), 4);
    }

    #[test]
    fn close_wakes_consumers_and_drains_backlog_first() {
        let q = BoundedQueue::new(8);
        q.try_push_all(vec![7]).unwrap();
        q.close();
        assert!(matches!(q.try_push_all(vec![8]), Err(PushError::Closed(_))));
        // Backlog still drains after close...
        assert_eq!(
            q.pop_batch_by(4, Duration::from_secs(5), |_| 0u8).unwrap(),
            vec![7]
        );
        // ...then consumers get the exit signal without blocking.
        assert_eq!(q.pop_batch_by(4, Duration::from_secs(5), |_| 0u8), None);
    }

    #[test]
    fn blocked_consumer_receives_items_pushed_later() {
        let q = std::sync::Arc::new(BoundedQueue::new(8));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop_batch_by(2, Duration::from_secs(5), |_| 0u8));
        std::thread::sleep(Duration::from_millis(10));
        q.try_push_all(vec![1, 2]).unwrap();
        assert_eq!(h.join().unwrap().unwrap(), vec![1, 2]);
    }
}
