//! The TCP front end: accept loop, per-connection HTTP handling, the
//! `/healthz`, `/metrics` and `/v1/predict` endpoints, and scheduler
//! worker lifecycle.
//!
//! Threading model: `N = workers` scheduler threads each own an
//! [`InferenceSession`] sharing the server's one model (weights are
//! never copied); the accept loop spawns one scoped thread per
//! connection. Everything runs under `std::thread::scope`, so the
//! server borrows its model and graph for the whole serve call and
//! needs no `'static` plumbing.

use std::collections::HashMap;
use std::io::BufReader;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

use circuit_graph::CircuitGraph;
use circuitgps::{CircuitGps, InferenceSession};
use subgraph_sample::{SamplerConfig, XcNormalizer};

use crate::engine::{Engine, SubmitError, TaskKind};
use crate::http::{read_request, write_response, Request};
use crate::json::{escape, Json};
use crate::metrics::Metrics;

/// Tunables of the serving daemon; see `docs/serving.md` for how they
/// interact with throughput and latency.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch at this many queries (the tape-free engine's sweet
    /// spot is around 32 on the bench workload).
    pub max_batch: usize,
    /// Flush a partial batch after this long (the latency bound an idle
    /// singleton request pays while the batcher hopes for company).
    pub max_wait: Duration,
    /// Scheduler threads, each with its own session and sample cache.
    pub workers: usize,
    /// Bounded queue depth; beyond it requests get `503`.
    pub queue_capacity: usize,
    /// Per-worker prepared-sample cache capacity.
    pub cache_capacity: usize,
    /// Subgraph sampler for pair queries (ground queries use the same
    /// node cap at 2 hops, the training convention).
    pub sampler: SamplerConfig,
    /// Per-connection socket read timeout (idle keep-alive reaping).
    pub read_timeout: Duration,
    /// How long a graceful drain ([`Server::begin_drain`]) waits for
    /// open connections to finish before force-closing them.
    pub drain_timeout: Duration,
    /// Per-request deadline: a predict request not fully answered within
    /// this window gets `504` instead of stranding the client behind a
    /// stalled batch.
    pub request_timeout: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(2000),
            workers: 2,
            queue_capacity: 1024,
            cache_capacity: 65_536,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 2048,
            },
            read_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Open-connection registry: write halves of every live connection, so
/// a drain can count stragglers and force-close them at the deadline.
#[derive(Debug, Default)]
struct ConnRegistry {
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
}

/// A warm serving instance: one model, one design graph, one engine.
///
/// Construct with [`Server::new`], then call [`Server::serve`] with a
/// bound listener; `serve` blocks until [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    model: CircuitGps,
    graph: CircuitGraph,
    xcn: XcNormalizer,
    design: String,
    engine: Engine,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    draining: AtomicBool,
    connections: Mutex<ConnRegistry>,
    started: Instant,
}

impl Server {
    /// Builds a server over `graph` (the design named `design`), fitting
    /// the XC normalizer on that graph — the same convention
    /// `cirgps predict` uses.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (zero workers, zero batch,
    /// queue smaller than one batch, cache smaller than one batch).
    pub fn new(model: CircuitGps, graph: CircuitGraph, design: String, cfg: ServeConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one scheduler worker");
        assert!(
            cfg.cache_capacity >= cfg.max_batch,
            "cache must hold at least one batch"
        );
        let engine = Engine::new(cfg.max_batch, cfg.max_wait, cfg.queue_capacity);
        let xcn = XcNormalizer::fit(&[&graph]);
        Server {
            model,
            graph,
            xcn,
            design,
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: Mutex::new(ConnRegistry::default()),
            started: Instant::now(),
        }
    }

    /// The engine (metrics access for benches and tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The wrapped model (e.g. for computing reference predictions in
    /// tests).
    pub fn model(&self) -> &CircuitGps {
        &self.model
    }

    /// The served graph.
    pub fn graph(&self) -> &CircuitGraph {
        &self.graph
    }

    /// Opens a fresh session against this server's model and graph —
    /// exactly what a scheduler worker runs, so tests and benches can
    /// compute direct (unserved) reference predictions.
    pub fn session(&self) -> InferenceSession<'_> {
        InferenceSession::shared(&self.model, self.xcn.clone(), &self.graph, self.cfg.sampler)
            .with_batch_size(self.cfg.max_batch)
            .with_cache_capacity(self.cfg.cache_capacity)
    }

    /// Runs the daemon on `listener` until [`Server::shutdown`] or
    /// [`Server::begin_drain`]: spawns the scheduler workers, then
    /// accepts connections.
    ///
    /// On drain the exit sequence is ordered for zero dropped work:
    /// the listener closes first (new connections are refused), open
    /// connections get up to `drain_timeout` to finish their in-flight
    /// and queued requests (the engine's queue stays open and its
    /// workers keep answering), stragglers are force-closed, and only
    /// then does the engine shut down.
    pub fn serve(&self, listener: TcpListener) {
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers {
                s.spawn(|| {
                    let mut session = self.session();
                    self.engine.run_worker(&mut session);
                });
            }
            for stream in listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                s.spawn(move || self.handle_connection(stream));
            }
            // Refuse new connections from this instant: queued backlog
            // connections get RST, fresh connects ECONNREFUSED.
            drop(listener);

            // Give open connections the drain window to finish. Their
            // submits still succeed (the queue is open) and the workers
            // are still running, so every accepted request is answered —
            // the deadline only bounds how long we wait for slow peers.
            let deadline = Instant::now() + self.cfg.drain_timeout;
            loop {
                let open = self.conns().streams.len();
                if open == 0 || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            // Force-close stragglers (blocked reads/writes error out and
            // their threads exit promptly).
            for stream in self.conns().streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            // Only now stop the engine: workers drain the backlog (every
            // enqueued job still computes) and exit.
            self.engine.shutdown();
        });
    }

    /// Stops [`Server::serve`]: sets the flag, closes the queue (pending
    /// jobs still complete) and pokes `addr` so the blocking `accept`
    /// returns. Keep-alive connections close after their in-flight
    /// request; idle connections are force-closed after `drain_timeout`.
    pub fn shutdown(&self, addr: SocketAddr) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.shutdown();
        let _ = TcpStream::connect(addr);
    }

    /// Starts a graceful drain (the SIGTERM path): stop accepting new
    /// connections, keep answering everything already accepted or
    /// queued, and let [`Server::serve`] return once connections finish
    /// (or `drain_timeout` passes). `/healthz` reports `"draining"` so
    /// load balancers stop routing here; new predict submissions on
    /// *existing* keep-alive connections still succeed until their
    /// connection closes.
    pub fn begin_drain(&self, addr: SocketAddr) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
    }

    /// Whether a graceful drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn conns(&self) -> std::sync::MutexGuard<'_, ConnRegistry> {
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(self.cfg.read_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        // Register for the drain accounting; the guard deregisters on
        // every exit path, including a panic in routing.
        let id = {
            let mut reg = self.conns();
            let id = reg.next_id;
            reg.next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                reg.streams.insert(id, clone);
            }
            id
        };
        struct Deregister<'a>(&'a Server, u64);
        impl Drop for Deregister<'_> {
            fn drop(&mut self) {
                self.0.conns().streams.remove(&self.1);
            }
        }
        let _guard = Deregister(self, id);

        let mut reader = BufReader::new(read_half);
        let mut writer = stream;
        loop {
            match read_request(&mut reader) {
                Ok(Some(req)) => {
                    // During shutdown/drain the keep-alive loop must not
                    // spin on a chatty client forever: answer this
                    // request (workers drain the backlog anyway), then
                    // close.
                    let close = req.close
                        || self.shutdown.load(Ordering::SeqCst)
                        || self.draining.load(Ordering::SeqCst);
                    let (status, content_type, body) = self.route(&req);
                    // Backpressure is transient — tell clients when to
                    // come back (docs/serving.md recommends exponential
                    // backoff from this floor).
                    let extra: &[(&str, &str)] = if status == 503 {
                        &[("retry-after", "1")]
                    } else {
                        &[]
                    };
                    if write_response(&mut writer, status, content_type, extra, body.as_bytes())
                        .is_err()
                        || close
                    {
                        return;
                    }
                }
                Ok(None) => return,
                Err(e) if e.kind() == std::io::ErrorKind::InvalidData => {
                    Metrics::inc(&self.engine.metrics().http_bad_request);
                    let body = format!("{{\"error\":\"{}\"}}", escape(&e.to_string()));
                    let _ =
                        write_response(&mut writer, 400, "application/json", &[], body.as_bytes());
                    return;
                }
                Err(_) => return,
            }
        }
    }

    fn route(&self, req: &Request) -> (u16, &'static str, String) {
        let metrics = self.engine.metrics();
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => {
                Metrics::inc(&metrics.http_healthz);
                (200, "application/json", self.healthz_body())
            }
            ("GET", "/metrics") => {
                Metrics::inc(&metrics.http_metrics);
                (
                    200,
                    "text/plain; version=0.0.4",
                    metrics.render(self.engine.queue_depth(), self.is_draining()),
                )
            }
            ("POST", "/v1/predict") => match self.handle_predict(&req.body) {
                Ok(body) => {
                    Metrics::inc(&metrics.http_predict);
                    (200, "application/json", body)
                }
                Err(PredictError::Bad(msg)) => {
                    Metrics::inc(&metrics.http_bad_request);
                    (
                        400,
                        "application/json",
                        format!("{{\"error\":\"{}\"}}", escape(&msg)),
                    )
                }
                Err(PredictError::Overloaded) => (
                    503,
                    "application/json",
                    "{\"error\":\"queue full, retry later\"}".into(),
                ),
                Err(PredictError::ShuttingDown) => (
                    503,
                    "application/json",
                    "{\"error\":\"shutting down\"}".into(),
                ),
                Err(PredictError::Timeout) => {
                    Metrics::inc(&metrics.requests_timeout);
                    (
                        504,
                        "application/json",
                        "{\"error\":\"deadline exceeded\"}".into(),
                    )
                }
            },
            ("POST" | "GET", _) => {
                Metrics::inc(&metrics.http_bad_request);
                (
                    404,
                    "application/json",
                    format!("{{\"error\":\"no route {}\"}}", escape(path)),
                )
            }
            _ => {
                Metrics::inc(&metrics.http_bad_request);
                (
                    405,
                    "application/json",
                    "{\"error\":\"method not allowed\"}".into(),
                )
            }
        }
    }

    fn healthz_body(&self) -> String {
        format!(
            "{{\"status\":\"{}\",\"design\":\"{}\",\"graph_nodes\":{},\"graph_edges\":{},\
             \"workers\":{},\"max_batch\":{},\"max_wait_us\":{},\"uptime_s\":{}}}",
            if self.is_draining() { "draining" } else { "ok" },
            escape(&self.design),
            self.graph.num_nodes(),
            self.graph.num_edges(),
            self.cfg.workers,
            self.cfg.max_batch,
            self.cfg.max_wait.as_micros(),
            self.started.elapsed().as_secs()
        )
    }

    fn handle_predict(&self, body: &[u8]) -> Result<String, PredictError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        let doc = Json::parse(text).map_err(|e| bad(&format!("bad JSON: {e}")))?;
        let task = doc
            .get("task")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"task\" (expected link|cap|ground)"))?;
        let n = self.graph.num_nodes() as u32;

        let (kind, keys, label) = match task {
            "link" | "cap" => {
                let pairs = doc
                    .get("pairs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"pairs\" array of [a,b] pairs"))?;
                let mut keys = Vec::with_capacity(pairs.len());
                for (i, p) in pairs.iter().enumerate() {
                    let pair = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| bad(&format!("pairs[{i}] is not a two-element array")))?;
                    let a = node_id(&pair[0], n, &format!("pairs[{i}][0]"))?;
                    let b = node_id(&pair[1], n, &format!("pairs[{i}][1]"))?;
                    if a == b {
                        return Err(bad(&format!(
                            "pairs[{i}] has identical endpoints (use task \"ground\" for nodes)"
                        )));
                    }
                    keys.push((a, b));
                }
                let kind = if task == "link" {
                    TaskKind::Link
                } else {
                    TaskKind::Coupling
                };
                (
                    kind,
                    keys,
                    if task == "link" { "probs" } else { "caps_norm" },
                )
            }
            "ground" => {
                let nodes = doc
                    .get("nodes")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"nodes\" array of node ids"))?;
                let keys = nodes
                    .iter()
                    .enumerate()
                    .map(|(i, v)| node_id(v, n, &format!("nodes[{i}]")).map(|id| (id, id)))
                    .collect::<Result<Vec<_>, _>>()?;
                (TaskKind::Ground, keys, "caps_norm")
            }
            other => return Err(bad(&format!("unknown task {other:?}"))),
        };
        if keys.is_empty() {
            return Err(bad("empty query list"));
        }
        // A request larger than the queue can *never* be enqueued, so a
        // retryable 503 would strand the client — tell it to split.
        let cap = self.engine.queue_capacity();
        if keys.len() > cap {
            return Err(bad(&format!(
                "request of {} queries exceeds the queue capacity {cap}; \
                 split it into smaller requests",
                keys.len()
            )));
        }

        let slot = self.engine.submit(kind, &keys).map_err(|e| match e {
            SubmitError::QueueFull => PredictError::Overloaded,
            SubmitError::ShuttingDown => PredictError::ShuttingDown,
            // Unreachable from HTTP: pair endpoints were validated above.
            SubmitError::IdenticalEndpoints { index } => {
                PredictError::Bad(format!("pairs[{index}] has identical endpoints"))
            }
        })?;
        let preds = slot
            .wait_deadline(self.cfg.request_timeout)
            .ok_or(PredictError::Timeout)?;

        let mut out = String::with_capacity(16 * preds.len() + 64);
        out.push_str(&format!("{{\"task\":\"{task}\",\"{label}\":["));
        for (i, p) in preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Shortest round-trip formatting: the printed value parses
            // back to the identical f32 (the protocol's exactness
            // contract; see docs/serving.md).
            out.push_str(&format!("{p}"));
        }
        out.push_str(&format!("],\"count\":{}}}", preds.len()));
        Ok(out)
    }
}

fn node_id(v: &Json, num_nodes: u32, what: &str) -> Result<u32, PredictError> {
    let id = v
        .as_u32()
        .ok_or_else(|| bad(&format!("{what} is not a non-negative integer")))?;
    if id >= num_nodes {
        return Err(bad(&format!(
            "{what} = {id} out of range (graph has {num_nodes} nodes)"
        )));
    }
    Ok(id)
}

enum PredictError {
    Bad(String),
    Overloaded,
    ShuttingDown,
    Timeout,
}

fn bad(msg: &str) -> PredictError {
    PredictError::Bad(msg.to_string())
}
