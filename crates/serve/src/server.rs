//! The TCP front end: accept loop, per-connection HTTP handling, the
//! `/healthz`, `/metrics`, `/v1/predict` and `/v1/sweep` endpoints, and
//! scheduler worker lifecycle.
//!
//! Threading model: `N = workers` scheduler threads each own an
//! [`InferenceSession`] sharing the server's one model (weights are
//! never copied); the accept loop spawns one scoped thread per
//! connection. Everything runs under `std::thread::scope`, so the
//! server borrows its model and graph for the whole serve call and
//! needs no `'static` plumbing.

use std::collections::HashMap;
use std::io::{BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use circuit_graph::CircuitGraph;
use circuitgps::{
    sweep_pairs, CandidatePairs, CircuitGps, InferenceSession, SweepConfig, SweepTask,
};
use cirgps_failpoints::FailAction;
use subgraph_sample::{SamplerConfig, XcNormalizer};

use crate::engine::{Engine, SubmitError, TaskKind};
use crate::http::{
    finish_chunked, read_request_limited, write_chunk, write_chunked_head, write_response,
    IngressLimits, Request, RequestError,
};
use crate::json::{escape, Json};
use crate::metrics::Metrics;

/// Tunables of the serving daemon; see `docs/serving.md` for how they
/// interact with throughput and latency.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Flush a batch at this many queries (the tape-free engine's sweet
    /// spot is around 32 on the bench workload).
    pub max_batch: usize,
    /// Flush a partial batch after this long (the latency bound an idle
    /// singleton request pays while the batcher hopes for company).
    pub max_wait: Duration,
    /// Scheduler threads, each with its own session and sample cache.
    pub workers: usize,
    /// Bounded queue depth; beyond it requests get `503`.
    pub queue_capacity: usize,
    /// Per-worker prepared-sample cache capacity.
    pub cache_capacity: usize,
    /// Subgraph sampler for pair queries (ground queries use the same
    /// node cap at 2 hops, the training convention).
    pub sampler: SamplerConfig,
    /// Per-connection socket *write* timeout (a peer that stops reading
    /// its response cannot wedge a connection thread forever). Read-side
    /// timing is governed by `idle_timeout` and `ingress_timeout`.
    pub read_timeout: Duration,
    /// How long a graceful drain ([`Server::begin_drain`]) waits for
    /// open connections to finish before force-closing them.
    pub drain_timeout: Duration,
    /// Per-request deadline: a predict request not fully answered within
    /// this window gets `504` instead of stranding the client behind a
    /// stalled batch.
    pub request_timeout: Duration,
    /// Largest accepted request body; bigger declarations get `413`.
    pub max_body_bytes: usize,
    /// Most headers accepted per request; more gets `400`.
    pub max_headers: usize,
    /// How long a keep-alive connection may sit idle *between* requests
    /// before the daemon closes it (separate from `ingress_timeout`,
    /// which bounds a request already in flight).
    pub idle_timeout: Duration,
    /// Wall-clock budget for reading one request, armed at its first
    /// byte. A slow-loris body that dribbles in past this deadline gets
    /// `408` instead of holding a thread open indefinitely.
    pub ingress_timeout: Duration,
    /// Open-connection cap: accepts beyond it are shed immediately with
    /// `503` + `Retry-After` instead of piling up threads.
    pub max_connections: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(2000),
            workers: 2,
            queue_capacity: 1024,
            cache_capacity: 65_536,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 2048,
            },
            read_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            request_timeout: Duration::from_secs(30),
            max_body_bytes: crate::http::MAX_BODY_BYTES,
            max_headers: crate::http::MAX_HEADERS,
            idle_timeout: Duration::from_secs(60),
            ingress_timeout: Duration::from_secs(10),
            max_connections: 256,
        }
    }
}

/// Shared per-connection deadline latch: armed at a request's first
/// byte, disarmed between requests. Lives behind an `Arc` because the
/// connection loop owns the write half while the `BufReader` owns the
/// [`DeadlineStream`] wrapping the read half.
#[derive(Debug, Default)]
struct DeadlineGate {
    deadline: Mutex<Option<Instant>>,
}

impl DeadlineGate {
    fn get(&self) -> Option<Instant> {
        *self.deadline.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn set(&self, d: Option<Instant>) {
        *self.deadline.lock().unwrap_or_else(PoisonError::into_inner) = d;
    }
}

/// Read wrapper that turns a `TcpStream`'s socket timeouts into two
/// deterministic signals: [`std::io::ErrorKind::WouldBlock`] for an idle
/// keep-alive connection (no request in flight) and
/// [`std::io::ErrorKind::TimedOut`] for a request that blew its ingress
/// deadline mid-read (slow-loris). The HTTP layer maps the former to a
/// silent close and the latter to `408`.
#[derive(Debug)]
struct DeadlineStream {
    inner: TcpStream,
    idle: Duration,
    ingress: Duration,
    gate: Arc<DeadlineGate>,
}

impl Read for DeadlineStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        // Chaos hook: `delay:MS` here models a stalled read path; with a
        // request in flight the delay consumes the ingress deadline and
        // the request is shed with 408.
        cirgps_failpoints::eval("serve.ingress.read");
        loop {
            let armed = self.gate.get();
            let timeout = match armed {
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::TimedOut,
                            "request read deadline exceeded",
                        ));
                    }
                    deadline - now
                }
                None => self.idle,
            };
            let _ = self
                .inner
                .set_read_timeout(Some(timeout.max(Duration::from_millis(1))));
            match self.inner.read(buf) {
                Ok(n) => {
                    if n > 0 && armed.is_none() {
                        self.gate.set(Some(Instant::now() + self.ingress));
                    }
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if armed.is_none() {
                        return Err(std::io::Error::new(
                            std::io::ErrorKind::WouldBlock,
                            "idle keep-alive timeout",
                        ));
                    }
                    // Armed: loop back and re-check the wall clock (the
                    // socket timeout may have fired marginally early).
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Open-connection registry: write halves of every live connection, so
/// a drain can count stragglers and force-close them at the deadline.
#[derive(Debug, Default)]
struct ConnRegistry {
    next_id: u64,
    streams: HashMap<u64, TcpStream>,
}

/// A warm serving instance: one model, one design graph, one engine.
///
/// Construct with [`Server::new`], then call [`Server::serve`] with a
/// bound listener; `serve` blocks until [`Server::shutdown`].
#[derive(Debug)]
pub struct Server {
    model: CircuitGps,
    graph: CircuitGraph,
    xcn: XcNormalizer,
    design: String,
    engine: Engine,
    cfg: ServeConfig,
    shutdown: AtomicBool,
    draining: AtomicBool,
    connections: Mutex<ConnRegistry>,
    started: Instant,
}

impl Server {
    /// Builds a server over `graph` (the design named `design`), fitting
    /// the XC normalizer on that graph — the same convention
    /// `cirgps predict` uses.
    ///
    /// # Panics
    ///
    /// Panics if the config is inconsistent (zero workers, zero batch,
    /// queue smaller than one batch, cache smaller than one batch).
    pub fn new(model: CircuitGps, graph: CircuitGraph, design: String, cfg: ServeConfig) -> Self {
        assert!(cfg.workers > 0, "need at least one scheduler worker");
        assert!(
            cfg.cache_capacity >= cfg.max_batch,
            "cache must hold at least one batch"
        );
        let engine = Engine::new(cfg.max_batch, cfg.max_wait, cfg.queue_capacity);
        let xcn = XcNormalizer::fit(&[&graph]);
        Server {
            model,
            graph,
            xcn,
            design,
            engine,
            cfg,
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            connections: Mutex::new(ConnRegistry::default()),
            started: Instant::now(),
        }
    }

    /// The engine (metrics access for benches and tests).
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The wrapped model (e.g. for computing reference predictions in
    /// tests).
    pub fn model(&self) -> &CircuitGps {
        &self.model
    }

    /// The served graph.
    pub fn graph(&self) -> &CircuitGraph {
        &self.graph
    }

    /// Opens a fresh session against this server's model and graph —
    /// exactly what a scheduler worker runs, so tests and benches can
    /// compute direct (unserved) reference predictions.
    pub fn session(&self) -> InferenceSession<'_> {
        InferenceSession::shared(&self.model, self.xcn.clone(), &self.graph, self.cfg.sampler)
            .with_batch_size(self.cfg.max_batch)
            .with_cache_capacity(self.cfg.cache_capacity)
    }

    /// Runs the daemon on `listener` until [`Server::shutdown`] or
    /// [`Server::begin_drain`]: spawns the scheduler workers, then
    /// accepts connections.
    ///
    /// On drain the exit sequence is ordered for zero dropped work:
    /// the listener closes first (new connections are refused), open
    /// connections get up to `drain_timeout` to finish their in-flight
    /// and queued requests (the engine's queue stays open and its
    /// workers keep answering), stragglers are force-closed, and only
    /// then does the engine shut down.
    pub fn serve(&self, listener: TcpListener) {
        std::thread::scope(|s| {
            for _ in 0..self.cfg.workers {
                s.spawn(|| {
                    let mut session = self.session();
                    self.engine.run_worker(&mut session);
                });
            }
            for stream in listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) || self.draining.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                // Accept-level shedding: past the connection cap, answer
                // 503 on the accept thread and close instead of spawning
                // yet another thread for a load we cannot serve.
                if self.conns().streams.len() >= self.cfg.max_connections {
                    Metrics::inc(&self.engine.metrics().rejected_max_conns);
                    let retry_after = self.retry_after_secs().to_string();
                    let mut stream = stream;
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
                    let _ = write_response(
                        &mut stream,
                        503,
                        "application/json",
                        &[("retry-after", &retry_after), ("connection", "close")],
                        b"{\"error\":\"too many connections, retry later\"}",
                    );
                    continue;
                }
                s.spawn(move || self.handle_connection(stream));
            }
            // Refuse new connections from this instant: queued backlog
            // connections get RST, fresh connects ECONNREFUSED.
            drop(listener);

            // Give open connections the drain window to finish. Their
            // submits still succeed (the queue is open) and the workers
            // are still running, so every accepted request is answered —
            // the deadline only bounds how long we wait for slow peers.
            let deadline = Instant::now() + self.cfg.drain_timeout;
            loop {
                let open = self.conns().streams.len();
                if open == 0 || Instant::now() >= deadline {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            // Force-close stragglers (blocked reads/writes error out and
            // their threads exit promptly).
            for stream in self.conns().streams.values() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            // Only now stop the engine: workers drain the backlog (every
            // enqueued job still computes) and exit.
            self.engine.shutdown();
        });
    }

    /// Stops [`Server::serve`]: sets the flag, closes the queue (pending
    /// jobs still complete) and pokes `addr` so the blocking `accept`
    /// returns. Keep-alive connections close after their in-flight
    /// request; idle connections are force-closed after `drain_timeout`.
    pub fn shutdown(&self, addr: SocketAddr) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.shutdown();
        let _ = TcpStream::connect(addr);
    }

    /// Starts a graceful drain (the SIGTERM path): stop accepting new
    /// connections, keep answering everything already accepted or
    /// queued, and let [`Server::serve`] return once connections finish
    /// (or `drain_timeout` passes). `/healthz` reports `"draining"` so
    /// load balancers stop routing here; new predict submissions on
    /// *existing* keep-alive connections still succeed until their
    /// connection closes.
    pub fn begin_drain(&self, addr: SocketAddr) {
        self.draining.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(addr);
    }

    /// Whether a graceful drain is in progress.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn conns(&self) -> std::sync::MutexGuard<'_, ConnRegistry> {
        self.connections
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// The load-aware `Retry-After` advertised on `503`: the predicted
    /// time to drain the current backlog (`ceil(depth / max_batch)`
    /// batches at the recent EWMA service time across the workers),
    /// clamped to `[1, 30]` seconds. An idle or cold server advertises
    /// the 1-second floor; a deeply backed-up one tells clients to stay
    /// away longer instead of dogpiling every second.
    fn retry_after_secs(&self) -> u64 {
        let depth = self.engine.queue_depth() as u64;
        let batch = self.engine.max_batch().max(1) as u64;
        let workers = self.cfg.workers.max(1) as u64;
        let est_us = depth
            .div_ceil(batch)
            .saturating_mul(self.engine.recent_batch_us())
            / workers;
        let secs = est_us.div_ceil(1_000_000).clamp(1, 30);
        self.engine
            .metrics()
            .retry_after_s
            .store(secs, Ordering::Relaxed);
        secs
    }

    /// Writes one buffered response, honoring the `serve.ingress.write`
    /// chaos hook (`truncate:N` cuts the wire mid-response, `error`
    /// drops it entirely — both then poison the connection like a real
    /// broken pipe would).
    fn write_reply(
        &self,
        writer: &mut TcpStream,
        status: u16,
        content_type: &str,
        extra: &[(&str, &str)],
        body: &[u8],
    ) -> std::io::Result<()> {
        match cirgps_failpoints::eval("serve.ingress.write") {
            Some(FailAction::Truncate(n)) => {
                let mut wire = Vec::new();
                write_response(&mut wire, status, content_type, extra, body)?;
                wire.truncate(n as usize);
                writer.write_all(&wire)?;
                let _ = writer.flush();
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "torn response (failpoint)",
                ))
            }
            Some(FailAction::Error) => Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "response write failed (failpoint)",
            )),
            None => write_response(writer, status, content_type, extra, body),
        }
    }

    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_write_timeout(Some(self.cfg.read_timeout));
        let Ok(read_half) = stream.try_clone() else {
            return;
        };
        // Register for the drain accounting; the guard deregisters on
        // every exit path, including a panic in routing.
        let id = {
            let mut reg = self.conns();
            let id = reg.next_id;
            reg.next_id += 1;
            if let Ok(clone) = stream.try_clone() {
                reg.streams.insert(id, clone);
            }
            id
        };
        struct Deregister<'a>(&'a Server, u64);
        impl Drop for Deregister<'_> {
            fn drop(&mut self) {
                self.0.conns().streams.remove(&self.1);
            }
        }
        let _guard = Deregister(self, id);

        let gate = Arc::new(DeadlineGate::default());
        let mut reader = BufReader::new(DeadlineStream {
            inner: read_half,
            idle: self.cfg.idle_timeout,
            ingress: self.cfg.ingress_timeout,
            gate: gate.clone(),
        });
        let mut writer = stream;
        let limits = IngressLimits {
            max_body_bytes: self.cfg.max_body_bytes,
            max_headers: self.cfg.max_headers,
        };
        let metrics = self.engine.metrics();
        loop {
            // Between requests the connection is idle, not mid-request:
            // the ingress deadline re-arms at the next first byte.
            gate.set(None);
            match read_request_limited(&mut reader, &limits) {
                Ok(Some(req)) => {
                    // During shutdown/drain the keep-alive loop must not
                    // spin on a chatty client forever: answer this
                    // request (workers drain the backlog anyway), then
                    // close.
                    let close = req.close
                        || self.shutdown.load(Ordering::SeqCst)
                        || self.draining.load(Ordering::SeqCst);
                    // The request is fully read; its predict/sweep time
                    // is governed by `request_timeout`, not the ingress
                    // deadline.
                    gate.set(None);
                    // Sweeps stream a chunked body directly to the
                    // socket (their length is unknown up front), so they
                    // bypass the buffered `route` path.
                    let path = req.path.split('?').next().unwrap_or("");
                    if req.method == "POST" && path == "/v1/sweep" {
                        match self.handle_sweep(&req.body, &mut writer) {
                            Ok(()) if !close => continue,
                            Ok(()) => return,
                            Err(SweepError::Bad(msg)) => {
                                Metrics::inc(&metrics.http_bad_request);
                                let body = format!("{{\"error\":\"{}\"}}", escape(&msg));
                                if self
                                    .write_reply(
                                        &mut writer,
                                        400,
                                        "application/json",
                                        &[],
                                        body.as_bytes(),
                                    )
                                    .is_err()
                                    || close
                                {
                                    return;
                                }
                                continue;
                            }
                            Err(SweepError::Io) => return,
                        }
                    }
                    let (status, content_type, body) = self.route(&req);
                    // Backpressure is transient — tell clients when to
                    // come back. The value is load-aware: it scales with
                    // the predicted backlog drain time (docs/serving.md
                    // recommends exponential backoff from that floor).
                    let retry_after;
                    let extra: &[(&str, &str)] = if status == 503 {
                        retry_after = self.retry_after_secs().to_string();
                        &[("retry-after", &retry_after)]
                    } else {
                        &[]
                    };
                    if self
                        .write_reply(&mut writer, status, content_type, extra, body.as_bytes())
                        .is_err()
                        || close
                    {
                        return;
                    }
                }
                Ok(None) => return,
                Err(RequestError::Bad(msg)) => {
                    Metrics::inc(&metrics.http_bad_request);
                    let body = format!("{{\"error\":\"{}\"}}", escape(&msg));
                    let _ = self.write_reply(
                        &mut writer,
                        400,
                        "application/json",
                        &[],
                        body.as_bytes(),
                    );
                    return;
                }
                Err(RequestError::TooLarge(msg)) => {
                    // The oversized body was never read, so the stream
                    // position is unknown — answer and close.
                    Metrics::inc(&metrics.requests_too_large);
                    let body = format!("{{\"error\":\"{}\"}}", escape(&msg));
                    let _ = self.write_reply(
                        &mut writer,
                        413,
                        "application/json",
                        &[("connection", "close")],
                        body.as_bytes(),
                    );
                    return;
                }
                Err(RequestError::Timeout) => {
                    Metrics::inc(&metrics.requests_ingress_timeout);
                    let _ = self.write_reply(
                        &mut writer,
                        408,
                        "application/json",
                        &[("connection", "close")],
                        b"{\"error\":\"request read deadline exceeded\"}",
                    );
                    return;
                }
                Err(RequestError::Io(e)) => {
                    if e.kind() == std::io::ErrorKind::WouldBlock {
                        // Idle keep-alive expiry — a normal lifecycle
                        // event, closed silently.
                        Metrics::inc(&metrics.connections_idle_closed);
                    }
                    return;
                }
            }
        }
    }

    fn route(&self, req: &Request) -> (u16, &'static str, String) {
        let metrics = self.engine.metrics();
        let path = req.path.split('?').next().unwrap_or("");
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => {
                Metrics::inc(&metrics.http_healthz);
                (200, "application/json", self.healthz_body())
            }
            ("GET", "/metrics") => {
                Metrics::inc(&metrics.http_metrics);
                (
                    200,
                    "text/plain; version=0.0.4",
                    metrics.render(
                        self.engine.queue_depth(),
                        self.is_draining(),
                        self.engine.in_brownout(),
                        self.engine.recent_batch_us(),
                        circuitgps::Backend::active().name(),
                        self.model.store().has_quant(),
                    ),
                )
            }
            ("POST", "/v1/predict") => match self.handle_predict(&req.body) {
                Ok(body) => {
                    Metrics::inc(&metrics.http_predict);
                    (200, "application/json", body)
                }
                Err(PredictError::Bad(msg)) => {
                    Metrics::inc(&metrics.http_bad_request);
                    (
                        400,
                        "application/json",
                        format!("{{\"error\":\"{}\"}}", escape(&msg)),
                    )
                }
                Err(PredictError::Overloaded) => (
                    503,
                    "application/json",
                    "{\"error\":\"queue full, retry later\"}".into(),
                ),
                Err(PredictError::Shed) => (
                    503,
                    "application/json",
                    "{\"error\":\"overloaded (admission control), retry later\"}".into(),
                ),
                Err(PredictError::ShuttingDown) => (
                    503,
                    "application/json",
                    "{\"error\":\"shutting down\"}".into(),
                ),
                Err(PredictError::Timeout) => {
                    Metrics::inc(&metrics.requests_timeout);
                    (
                        504,
                        "application/json",
                        "{\"error\":\"deadline exceeded\"}".into(),
                    )
                }
            },
            ("POST" | "GET", _) => {
                Metrics::inc(&metrics.http_bad_request);
                (
                    404,
                    "application/json",
                    format!("{{\"error\":\"no route {}\"}}", escape(path)),
                )
            }
            _ => {
                Metrics::inc(&metrics.http_bad_request);
                (
                    405,
                    "application/json",
                    "{\"error\":\"method not allowed\"}".into(),
                )
            }
        }
    }

    fn healthz_body(&self) -> String {
        format!(
            "{{\"status\":\"{}\",\"design\":\"{}\",\"graph_nodes\":{},\"graph_edges\":{},\
             \"workers\":{},\"max_batch\":{},\"max_wait_us\":{},\"uptime_s\":{}}}",
            if self.is_draining() { "draining" } else { "ok" },
            escape(&self.design),
            self.graph.num_nodes(),
            self.graph.num_edges(),
            self.cfg.workers,
            self.cfg.max_batch,
            self.cfg.max_wait.as_micros(),
            self.started.elapsed().as_secs()
        )
    }

    fn handle_predict(&self, body: &[u8]) -> Result<String, PredictError> {
        let text = std::str::from_utf8(body).map_err(|_| bad("body is not UTF-8"))?;
        let doc = Json::parse(text).map_err(|e| bad(&format!("bad JSON: {e}")))?;
        let task = doc
            .get("task")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing \"task\" (expected link|cap|ground)"))?;
        let n = self.graph.num_nodes() as u32;

        let (kind, keys, label) = match task {
            "link" | "cap" => {
                let pairs = doc
                    .get("pairs")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"pairs\" array of [a,b] pairs"))?;
                let mut keys = Vec::with_capacity(pairs.len());
                for (i, p) in pairs.iter().enumerate() {
                    let pair = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| bad(&format!("pairs[{i}] is not a two-element array")))?;
                    let a = node_id(&pair[0], n, &format!("pairs[{i}][0]"))
                        .map_err(PredictError::Bad)?;
                    let b = node_id(&pair[1], n, &format!("pairs[{i}][1]"))
                        .map_err(PredictError::Bad)?;
                    if a == b {
                        return Err(bad(&format!(
                            "pairs[{i}] has identical endpoints (use task \"ground\" for nodes)"
                        )));
                    }
                    keys.push((a, b));
                }
                let kind = if task == "link" {
                    TaskKind::Link
                } else {
                    TaskKind::Coupling
                };
                (
                    kind,
                    keys,
                    if task == "link" { "probs" } else { "caps_norm" },
                )
            }
            "ground" => {
                let nodes = doc
                    .get("nodes")
                    .and_then(Json::as_arr)
                    .ok_or_else(|| bad("missing \"nodes\" array of node ids"))?;
                let keys = nodes
                    .iter()
                    .enumerate()
                    .map(|(i, v)| {
                        node_id(v, n, &format!("nodes[{i}]"))
                            .map(|id| (id, id))
                            .map_err(PredictError::Bad)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                (TaskKind::Ground, keys, "caps_norm")
            }
            other => return Err(bad(&format!("unknown task {other:?}"))),
        };
        if keys.is_empty() {
            return Err(bad("empty query list"));
        }
        // A request larger than the queue can *never* be enqueued, so a
        // retryable 503 would strand the client — tell it to split.
        let cap = self.engine.queue_capacity();
        if keys.len() > cap {
            return Err(bad(&format!(
                "request of {} queries exceeds the queue capacity {cap}; \
                 split it into smaller requests",
                keys.len()
            )));
        }

        // Admission control: once the EWMA service time is warm, shed
        // requests whose predicted queue sojourn already exceeds their
        // deadline — answering 503 now beats making the client wait the
        // full `request_timeout` for a guaranteed 504.
        let per_batch_us = self.engine.recent_batch_us();
        if per_batch_us > 0 {
            let backlog = (self.engine.queue_depth() + keys.len()) as u64;
            let batch = self.engine.max_batch().max(1) as u64;
            let workers = self.cfg.workers.max(1) as u64;
            let est_us = backlog.div_ceil(batch).saturating_mul(per_batch_us) / workers;
            if est_us > self.cfg.request_timeout.as_micros() as u64 {
                Metrics::inc(&self.engine.metrics().rejected_admission);
                return Err(PredictError::Shed);
            }
        }

        let slot = self.engine.submit(kind, &keys).map_err(|e| match e {
            SubmitError::QueueFull => PredictError::Overloaded,
            SubmitError::ShuttingDown => PredictError::ShuttingDown,
            // Unreachable from HTTP: pair endpoints were validated above.
            SubmitError::IdenticalEndpoints { index } => {
                PredictError::Bad(format!("pairs[{index}] has identical endpoints"))
            }
        })?;
        let preds = slot
            .wait_deadline(self.cfg.request_timeout)
            .ok_or(PredictError::Timeout)?;

        let mut out = String::with_capacity(16 * preds.len() + 64);
        out.push_str(&format!("{{\"task\":\"{task}\",\"{label}\":["));
        for (i, p) in preds.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            // Shortest round-trip formatting: the printed value parses
            // back to the identical f32 (the protocol's exactness
            // contract; see docs/serving.md).
            out.push_str(&format!("{p}"));
        }
        out.push_str(&format!("],\"count\":{}}}", preds.len()));
        Ok(out)
    }

    /// Runs one planned sweep on the connection thread, streaming a
    /// chunked JSONL body: one line per pair in input order, then a
    /// `{"done":true,...}` trailer with the planner stats. Bypasses the
    /// engine queue — a sweep is a bulk job with its own batching, not a
    /// latency-sensitive query — and shares the server's model, so it is
    /// bitwise-identical to `/v1/predict` on the same pairs.
    fn handle_sweep(
        &self,
        body: &[u8],
        writer: &mut impl std::io::Write,
    ) -> Result<(), SweepError> {
        let (task, input, chunk) = self.parse_sweep(body).map_err(SweepError::Bad)?;
        let metrics = self.engine.metrics();
        Metrics::inc(&metrics.http_sweep);
        if write_chunked_head(writer, 200, "application/jsonl").is_err() {
            return Err(SweepError::Io);
        }

        let cfg = SweepConfig {
            task,
            sampler: self.cfg.sampler,
            chunk,
            threads: 1,
            dedup: true,
        };
        let label = match task {
            SweepTask::Link => "prob",
            SweepTask::Coupling => "cap_norm",
        };
        let mut io_err = false;
        let mut buf = String::new();
        let mut emit = |ps: &[(u32, u32)], vs: &[f32]| -> bool {
            // Chaos hook: a client that disconnects mid-stream surfaces
            // here as a write error on the next chunk.
            if cirgps_failpoints::eval("serve.sweep.chunk").is_some() {
                io_err = true;
                return false;
            }
            buf.clear();
            for (&(a, b), v) in ps.iter().zip(vs) {
                // Shortest round-trip formatting, same exactness contract
                // as `/v1/predict`.
                buf.push_str(&format!("{{\"a\":{a},\"b\":{b},\"{label}\":{v}}}\n"));
            }
            if write_chunk(writer, buf.as_bytes()).is_err() {
                io_err = true;
                return false;
            }
            true
        };
        let stats = match input {
            SweepInput::Pairs(list) => {
                sweep_pairs(&self.model, &self.xcn, &self.graph, list, &cfg, &mut emit)
            }
            SweepInput::Enumerate {
                per_node_cap,
                max_pairs,
            } => {
                let it = CandidatePairs::new(&self.graph, per_node_cap, max_pairs);
                sweep_pairs(&self.model, &self.xcn, &self.graph, it, &cfg, &mut emit)
            }
        };
        if io_err {
            return Err(SweepError::Io);
        }
        metrics
            .sweep_pairs_total
            .fetch_add(stats.pairs as u64, Ordering::Relaxed);
        metrics
            .sweep_forwards_total
            .fetch_add(stats.unique_forwards as u64, Ordering::Relaxed);
        let trailer = format!(
            "{{\"done\":true,\"pairs\":{},\"chunks\":{},\"unique_forwards\":{},\"dedup_hits\":{}}}\n",
            stats.pairs, stats.chunks, stats.unique_forwards, stats.dedup_hits
        );
        if write_chunk(writer, trailer.as_bytes()).is_err() || finish_chunked(writer).is_err() {
            return Err(SweepError::Io);
        }
        Ok(())
    }

    /// Validates a sweep request body. Everything here happens *before*
    /// the chunked head goes out, so failures still get a clean `400`.
    fn parse_sweep(&self, body: &[u8]) -> Result<(SweepTask, SweepInput, usize), String> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
        let doc = Json::parse(text).map_err(|e| format!("bad JSON: {e}"))?;
        let task = match doc.get("task").and_then(Json::as_str) {
            Some("link") => SweepTask::Link,
            Some("cap") => SweepTask::Coupling,
            Some(other) => return Err(format!("unknown task {other:?} (expected link|cap)")),
            None => return Err("missing \"task\" (expected link|cap)".into()),
        };
        let chunk = match doc.get("chunk") {
            None => 2048usize,
            Some(v) => v
                .as_u32()
                .filter(|&c| c > 0)
                .ok_or_else(|| "\"chunk\" must be a positive integer".to_string())?
                as usize,
        };
        let n = self.graph.num_nodes() as u32;
        let input = match (doc.get("pairs"), doc.get("enumerate")) {
            (Some(_), Some(_)) => {
                return Err("provide either \"pairs\" or \"enumerate\", not both".into())
            }
            (Some(p), None) => {
                let pairs = p
                    .as_arr()
                    .ok_or_else(|| "\"pairs\" must be an array of [a,b] pairs".to_string())?;
                if pairs.is_empty() {
                    return Err("empty pair list".into());
                }
                let mut keys = Vec::with_capacity(pairs.len());
                for (i, p) in pairs.iter().enumerate() {
                    let pair = p
                        .as_arr()
                        .filter(|a| a.len() == 2)
                        .ok_or_else(|| format!("pairs[{i}] is not a two-element array"))?;
                    let a = node_id(&pair[0], n, &format!("pairs[{i}][0]"))?;
                    let b = node_id(&pair[1], n, &format!("pairs[{i}][1]"))?;
                    if a == b {
                        return Err(format!("pairs[{i}] has identical endpoints"));
                    }
                    keys.push((a, b));
                }
                SweepInput::Pairs(keys)
            }
            (None, Some(e)) => {
                let cap_field = |name: &str| -> Result<usize, String> {
                    match e.get(name) {
                        None => Ok(0),
                        Some(v) => v.as_u32().map(|c| c as usize).ok_or_else(|| {
                            format!("\"enumerate.{name}\" must be a non-negative integer")
                        }),
                    }
                };
                SweepInput::Enumerate {
                    per_node_cap: cap_field("per_node_cap")?,
                    max_pairs: cap_field("max_pairs")?,
                }
            }
            (None, None) => {
                return Err("missing \"pairs\" array or \"enumerate\" object".into());
            }
        };
        Ok((task, input, chunk))
    }
}

/// The pair source of a sweep request.
enum SweepInput {
    /// Explicit `[a,b]` pairs from the request body.
    Pairs(Vec<(u32, u32)>),
    /// Planner-enumerated candidates (`0` = unlimited for both caps).
    Enumerate {
        per_node_cap: usize,
        max_pairs: usize,
    },
}

/// Sweep failure modes: `Bad` happens before any bytes go out (normal
/// `400`); `Io` means the chunked stream broke and the connection is
/// unusable.
enum SweepError {
    Bad(String),
    Io,
}

fn node_id(v: &Json, num_nodes: u32, what: &str) -> Result<u32, String> {
    let id = v
        .as_u32()
        .ok_or_else(|| format!("{what} is not a non-negative integer"))?;
    if id >= num_nodes {
        return Err(format!(
            "{what} = {id} out of range (graph has {num_nodes} nodes)"
        ));
    }
    Ok(id)
}

enum PredictError {
    Bad(String),
    Overloaded,
    Shed,
    ShuttingDown,
    Timeout,
}

fn bad(msg: &str) -> PredictError {
    PredictError::Bad(msg.to_string())
}
