//! # cirgps-serve
//!
//! A long-lived inference daemon for the CirGPS engine: keeps the model,
//! design graph and prepared-sample caches warm in one process and
//! serves concurrent link/capacitance queries over a hand-rolled
//! HTTP/1.1 + JSON protocol on `std::net::TcpListener` (no external
//! dependencies, matching the workspace's offline compat-shim
//! philosophy).
//!
//! The core is a **dynamic micro-batcher**: connection threads push
//! queries into a bounded MPMC [`queue`], scheduler workers drain up to
//! `max_batch` queries or wait at most `max_wait` (whichever flushes
//! first) and run the whole batch through the tape-free block-diagonal
//! engine (`CircuitGps::predict_link_batch` and friends, via
//! [`circuitgps::InferenceSession::predict_batch`]). Concurrent
//! singleton requests therefore pay batch-class per-sample cost instead
//! of per-request model invocations — and because the batched engine is
//! bitwise-equal to per-sample prediction, batching is *observably
//! invisible* except in the throughput counters.
//!
//! Protocol reference and capacity-planning numbers: `docs/serving.md`.
//! The CLI front end is `cirgps serve` (see `cirgps help`).
//!
//! ## In-process use
//!
//! The HTTP layer is optional; benches and embedders can drive the
//! engine directly:
//!
//! ```no_run
//! # use cirgps_serve::{Server, ServeConfig, TaskKind};
//! # fn demo(model: circuitgps::CircuitGps, graph: circuit_graph::CircuitGraph) {
//! let server = Server::new(model, graph, "SSRAM".into(), ServeConfig::default());
//! std::thread::scope(|s| {
//!     s.spawn(|| {
//!         let mut session = server.session();
//!         server.engine().run_worker(&mut session);
//!     });
//!     let slot = server.engine().submit(TaskKind::Link, &[(0, 5)]).unwrap();
//!     let probability = slot.wait()[0];
//!     # let _ = probability;
//!     server.engine().shutdown();
//! });
//! # }
//! ```

#![deny(missing_docs)]

pub mod engine;
pub mod http;
pub mod json;
pub mod metrics;
pub mod queue;
mod server;

pub use engine::{Engine, ResponseSlot, SubmitError, TaskKind};
pub use metrics::Metrics;
pub use queue::{BoundedQueue, PushError};
pub use server::{ServeConfig, Server};
