//! Lock-free serving counters, rendered in Prometheus text exposition
//! format by the `/metrics` endpoint.
//!
//! Everything is a monotonic `AtomicU64` (plus two high-watermark
//! gauges), so the hot path pays a handful of relaxed atomic adds per
//! request and the scrape side needs no locks. Batch occupancy — the
//! number the dynamic batcher exists to maximize — is exported as a
//! sum/count pair so dashboards can plot the running average, plus a
//! max watermark.

use std::sync::atomic::{AtomicU64, Ordering};

/// Serving counters shared by the HTTP layer and the scheduler workers.
#[derive(Debug, Default)]
pub struct Metrics {
    /// HTTP requests accepted, by endpoint.
    pub http_healthz: AtomicU64,
    /// `/metrics` scrapes.
    pub http_metrics: AtomicU64,
    /// `/v1/predict` requests that parsed and enqueued successfully.
    pub http_predict: AtomicU64,
    /// Requests rejected with `4xx` (bad method/path/body).
    pub http_bad_request: AtomicU64,
    /// Requests rejected with `503` because the queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Individual queries enqueued (a predict request may carry many).
    pub queries_total: AtomicU64,
    /// Batches executed by scheduler workers.
    pub batches_total: AtomicU64,
    /// Sum of batch sizes (`/ batches_total` = average occupancy).
    pub batch_occupancy_sum: AtomicU64,
    /// Largest batch executed so far (high-watermark gauge).
    pub batch_occupancy_max: AtomicU64,
    /// Sum of per-query latencies, enqueue → result written, in µs.
    pub latency_us_sum: AtomicU64,
    /// Number of latency observations (== queries answered).
    pub latency_us_count: AtomicU64,
    /// Slowest single query so far, in µs (high-watermark gauge).
    pub latency_us_max: AtomicU64,
    /// Batches whose prediction panicked (answered with NaN; should
    /// stay 0 — the HTTP layer validates every id before submit).
    pub worker_panics: AtomicU64,
    /// Requests answered `504` because they missed their deadline
    /// (`request_timeout`) while waiting on the engine.
    pub requests_timeout: AtomicU64,
    /// `/v1/sweep` requests that parsed and started streaming.
    pub http_sweep: AtomicU64,
    /// Pairs answered across all sweep requests.
    pub sweep_pairs_total: AtomicU64,
    /// Unique model forwards executed across all sweep requests (the gap
    /// to `sweep_pairs_total` is the shared-subgraph dedup win).
    pub sweep_forwards_total: AtomicU64,
    /// Requests rejected with `413` because the declared body exceeded
    /// the ingress cap.
    pub requests_too_large: AtomicU64,
    /// Requests answered `408` because they were still arriving when the
    /// per-request ingress deadline expired (slow-loris shedding).
    pub requests_ingress_timeout: AtomicU64,
    /// Keep-alive connections closed for idling past `idle_timeout`.
    pub connections_idle_closed: AtomicU64,
    /// Requests shed with `503` by admission control (predicted queue
    /// sojourn exceeded the request deadline).
    pub rejected_admission: AtomicU64,
    /// Connections shed with `503` at accept time because the open
    /// connection cap was reached.
    pub rejected_max_conns: AtomicU64,
    /// Times the engine entered brownout (queue pressure shrank the
    /// batching window).
    pub brownout_entered_total: AtomicU64,
    /// Last `Retry-After` value advertised on a `503`, in seconds
    /// (gauge; load-aware, see `docs/serving.md`).
    pub retry_after_s: AtomicU64,
}

impl Metrics {
    /// Bumps a counter by one (relaxed; counters are independent).
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one executed batch of `occupancy` queries.
    pub fn observe_batch(&self, occupancy: usize) {
        self.batches_total.fetch_add(1, Ordering::Relaxed);
        self.batch_occupancy_sum
            .fetch_add(occupancy as u64, Ordering::Relaxed);
        self.batch_occupancy_max
            .fetch_max(occupancy as u64, Ordering::Relaxed);
    }

    /// Records one answered query's enqueue→result latency.
    pub fn observe_latency_us(&self, us: u64) {
        self.latency_us_sum.fetch_add(us, Ordering::Relaxed);
        self.latency_us_count.fetch_add(1, Ordering::Relaxed);
        self.latency_us_max.fetch_max(us, Ordering::Relaxed);
    }

    /// Renders the counters in Prometheus text format. `queue_depth`,
    /// `draining`, `brownout` and `recent_batch_us` are sampled by the
    /// caller (they live in the queue, the server and the engine, not
    /// here); `backend`/`int8` describe the inference configuration and
    /// are emitted as an info-style gauge so dashboards can tell which
    /// SIMD backend and weight precision a deployment runs.
    pub fn render(
        &self,
        queue_depth: usize,
        draining: bool,
        brownout: bool,
        recent_batch_us: u64,
        backend: &str,
        int8: bool,
    ) -> String {
        let c = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let rows: [(&str, &str, u64); 24] = [
            ("requests_healthz_total", "counter", c(&self.http_healthz)),
            ("requests_metrics_total", "counter", c(&self.http_metrics)),
            ("requests_predict_total", "counter", c(&self.http_predict)),
            ("requests_bad_total", "counter", c(&self.http_bad_request)),
            (
                "rejected_queue_full_total",
                "counter",
                c(&self.rejected_queue_full),
            ),
            ("queries_total", "counter", c(&self.queries_total)),
            ("batches_total", "counter", c(&self.batches_total)),
            (
                "batch_occupancy_sum",
                "counter",
                c(&self.batch_occupancy_sum),
            ),
            ("batch_occupancy_max", "gauge", c(&self.batch_occupancy_max)),
            ("latency_us_sum", "counter", c(&self.latency_us_sum)),
            ("latency_us_count", "counter", c(&self.latency_us_count)),
            ("latency_us_max", "gauge", c(&self.latency_us_max)),
            ("worker_panics_total", "counter", c(&self.worker_panics)),
            (
                "requests_timeout_total",
                "counter",
                c(&self.requests_timeout),
            ),
            ("requests_sweep_total", "counter", c(&self.http_sweep)),
            ("sweep_pairs_total", "counter", c(&self.sweep_pairs_total)),
            (
                "sweep_forwards_total",
                "counter",
                c(&self.sweep_forwards_total),
            ),
            (
                "requests_too_large_total",
                "counter",
                c(&self.requests_too_large),
            ),
            (
                "requests_ingress_timeout_total",
                "counter",
                c(&self.requests_ingress_timeout),
            ),
            (
                "connections_idle_closed_total",
                "counter",
                c(&self.connections_idle_closed),
            ),
            (
                "rejected_admission_total",
                "counter",
                c(&self.rejected_admission),
            ),
            (
                "rejected_max_conns_total",
                "counter",
                c(&self.rejected_max_conns),
            ),
            (
                "brownout_entered_total",
                "counter",
                c(&self.brownout_entered_total),
            ),
            ("retry_after_s", "gauge", c(&self.retry_after_s)),
        ];
        let mut out = String::with_capacity(1024);
        for (name, kind, value) in rows {
            out.push_str(&format!(
                "# TYPE cirgps_serve_{name} {kind}\ncirgps_serve_{name} {value}\n"
            ));
        }
        out.push_str(&format!(
            "# TYPE cirgps_serve_queue_depth gauge\ncirgps_serve_queue_depth {queue_depth}\n"
        ));
        out.push_str(&format!(
            "# TYPE cirgps_serve_draining gauge\ncirgps_serve_draining {}\n",
            draining as u8
        ));
        out.push_str(&format!(
            "# TYPE cirgps_serve_brownout gauge\ncirgps_serve_brownout {}\n",
            brownout as u8
        ));
        out.push_str(&format!(
            "# TYPE cirgps_serve_recent_batch_us gauge\ncirgps_serve_recent_batch_us {recent_batch_us}\n"
        ));
        out.push_str(&format!(
            "# TYPE cirgps_serve_backend_info gauge\n\
             cirgps_serve_backend_info{{backend=\"{backend}\",precision=\"{}\"}} 1\n",
            if int8 { "int8" } else { "f32" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_contains_every_counter_and_tracks_watermarks() {
        let m = Metrics::default();
        m.observe_batch(3);
        m.observe_batch(7);
        m.observe_batch(5);
        m.observe_latency_us(100);
        m.observe_latency_us(250);
        Metrics::inc(&m.http_predict);
        let text = m.render(11, true, true, 1500, "scalar", false);
        assert!(text.contains("cirgps_serve_batches_total 3"), "{text}");
        assert!(
            text.contains("cirgps_serve_batch_occupancy_sum 15"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_batch_occupancy_max 7"),
            "{text}"
        );
        assert!(text.contains("cirgps_serve_latency_us_sum 350"), "{text}");
        assert!(text.contains("cirgps_serve_latency_us_max 250"), "{text}");
        assert!(
            text.contains("cirgps_serve_requests_predict_total 1"),
            "{text}"
        );
        assert!(text.contains("cirgps_serve_queue_depth 11"), "{text}");
        assert!(text.contains("cirgps_serve_draining 1"), "{text}");
        assert!(text.contains("cirgps_serve_brownout 1"), "{text}");
        assert!(text.contains("cirgps_serve_recent_batch_us 1500"), "{text}");
        assert!(
            text.contains("cirgps_serve_requests_timeout_total 0"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_requests_too_large_total 0"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_rejected_admission_total 0"),
            "{text}"
        );
        assert!(text.contains("cirgps_serve_retry_after_s 0"), "{text}");
        assert!(
            text.contains("cirgps_serve_backend_info{backend=\"scalar\",precision=\"f32\"} 1"),
            "{text}"
        );
        m.sweep_pairs_total.fetch_add(100, Ordering::Relaxed);
        m.sweep_forwards_total.fetch_add(9, Ordering::Relaxed);
        Metrics::inc(&m.http_sweep);
        let text = m.render(0, false, false, 0, "avx2", true);
        assert!(
            text.contains("cirgps_serve_requests_sweep_total 1"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_sweep_pairs_total 100"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_sweep_forwards_total 9"),
            "{text}"
        );
        assert!(
            text.contains("cirgps_serve_backend_info{backend=\"avx2\",precision=\"int8\"} 1"),
            "{text}"
        );
    }
}
