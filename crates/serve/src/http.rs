//! Hand-rolled HTTP/1.1 framing over `std::io` streams.
//!
//! The daemon speaks just enough HTTP for its four endpoints: request
//! line + headers + `Content-Length` body in, fixed-length or chunked
//! response out (no TLS, no HTTP/2). Connections are keep-alive by
//! default per HTTP/1.1; [`read_request`] returns `Ok(None)` on a clean
//! close so connection loops terminate without an error.
//!
//! Both sides of the wire live here: the server half
//! ([`read_request_limited`], [`write_response`], chunked writers) and
//! the client half ([`write_request`], [`read_response`], chunked
//! readers) used by `cirgps-client`, so a request framed by one half is
//! by construction parseable by the other.

use std::io::{self, BufRead, Write};

/// Maximum accepted header-section size (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Default maximum accepted request-body size (a predict request of
/// ~100k queries fits comfortably; anything bigger is a client bug).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;
/// Default maximum number of request headers.
pub const MAX_HEADERS: usize = 64;

/// Per-request ingress caps enforced by [`read_request_limited`].
///
/// The head-section byte cap is fixed (`16 KiB`); body size and header
/// count are tunable because legitimate workloads differ by orders of
/// magnitude (a full-chip sweep request vs. a health probe).
#[derive(Debug, Clone, Copy)]
pub struct IngressLimits {
    /// Reject bodies longer than this with [`RequestError::TooLarge`].
    pub max_body_bytes: usize,
    /// Reject requests with more headers than this.
    pub max_headers: usize,
}

impl Default for IngressLimits {
    fn default() -> Self {
        IngressLimits {
            max_body_bytes: MAX_BODY_BYTES,
            max_headers: MAX_HEADERS,
        }
    }
}

/// Why reading one request failed — each variant maps to a distinct
/// HTTP answer so hostile input is always shed with a *named* status
/// instead of a generic hangup.
#[derive(Debug)]
pub enum RequestError {
    /// Protocol violation (malformed line, bad header, non-HTTP bytes):
    /// answer `400` and close.
    Bad(String),
    /// Declared body exceeds the ingress cap: answer `413` and close
    /// (the body is unread, so the connection cannot be reused).
    TooLarge(String),
    /// The per-request wall-clock deadline expired while the request was
    /// still arriving (slow-loris): answer `408` and close.
    Timeout,
    /// Transport-level failure (peer reset, idle keep-alive expiry as
    /// [`io::ErrorKind::WouldBlock`]): drop the connection silently.
    Io(io::Error),
}

impl RequestError {
    fn from_io(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::TimedOut => RequestError::Timeout,
            io::ErrorKind::InvalidData => RequestError::Bad(e.to_string()),
            _ => RequestError::Io(e),
        }
    }
}

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query string).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
}

/// Reads one `\n`-terminated line of at most `max` bytes. A longer line
/// errors *before* buffering it all (the cap on line length is what
/// bounds memory use per connection; `MAX_HEAD_BYTES` alone would not,
/// since it is only checked between lines).
fn read_line_bounded(stream: &mut impl BufRead, max: usize) -> io::Result<String> {
    let mut buf = Vec::with_capacity(128);
    let mut limited = io::Read::take(io::Read::by_ref(stream), max as u64 + 1);
    limited.read_until(b'\n', &mut buf)?;
    if buf.len() > max {
        return Err(bad_data(format!("line longer than {max} bytes")));
    }
    String::from_utf8(buf).map_err(|_| bad_data("non-UTF-8 header bytes".into()))
}

/// Reads one request off a buffered stream with explicit ingress caps.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending a request line (the keep-alive loop's exit).
///
/// # Errors
///
/// Every failure is classified by [`RequestError`]: protocol violations
/// as `Bad` (`400`), an oversized declared body as `TooLarge` (`413`), a
/// blown per-request read deadline as `Timeout` (`408`; the underlying
/// stream signals it with [`io::ErrorKind::TimedOut`]), and transport
/// failures as `Io`.
pub fn read_request_limited(
    stream: &mut impl BufRead,
    limits: &IngressLimits,
) -> Result<Option<Request>, RequestError> {
    let line = read_line_bounded(stream, MAX_HEAD_BYTES).map_err(RequestError::from_io)?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_string(), v)
        }
        _ => {
            return Err(RequestError::Bad(format!(
                "malformed request line {line:?}"
            )))
        }
    };
    let _ = version;

    let mut content_length = 0usize;
    let mut close = false;
    let mut head_bytes = line.len();
    let mut headers = 0usize;
    loop {
        let header = read_line_bounded(stream, MAX_HEAD_BYTES).map_err(RequestError::from_io)?;
        if header.is_empty() {
            return Err(RequestError::Bad("connection closed mid-headers".into()));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(RequestError::Bad("header section too large".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > limits.max_headers {
            return Err(RequestError::Bad(format!(
                "more than {} headers",
                limits.max_headers
            )));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(RequestError::Bad(format!("malformed header {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| RequestError::Bad(format!("bad content-length {value:?}")))?;
                if content_length > limits.max_body_bytes {
                    return Err(RequestError::TooLarge(format!(
                        "body of {content_length} bytes exceeds the {} byte limit",
                        limits.max_body_bytes
                    )));
                }
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    stream
        .read_exact(&mut body)
        .map_err(RequestError::from_io)?;
    Ok(Some(Request {
        method,
        path,
        body,
        close,
    }))
}

/// Reads one request with the default [`IngressLimits`], collapsing the
/// typed [`RequestError`] back into `io::Error` (`Bad`/`TooLarge` →
/// [`io::ErrorKind::InvalidData`], `Timeout` →
/// [`io::ErrorKind::TimedOut`]). Kept for embedders and tests that do
/// not need per-status shedding; the daemon itself uses
/// [`read_request_limited`].
///
/// # Errors
///
/// I/O errors propagate; protocol violations surface as
/// [`io::ErrorKind::InvalidData`] and the connection should be dropped
/// after a `400`.
pub fn read_request(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
    match read_request_limited(stream, &IngressLimits::default()) {
        Ok(req) => Ok(req),
        Err(RequestError::Bad(msg)) | Err(RequestError::TooLarge(msg)) => Err(bad_data(msg)),
        Err(RequestError::Timeout) => Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "request deadline exceeded",
        )),
        Err(RequestError::Io(e)) => Err(e),
    }
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

/// Writes one fixed-length response. `extra_headers` go out verbatim
/// after the standard ones (e.g. `("retry-after", "3")` on `503`).
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        status_reason(status),
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a `Transfer-Encoding: chunked` response. The body
/// must follow as zero or more [`write_chunk`] calls terminated by
/// [`finish_chunked`]. Used by streaming endpoints (`/v1/sweep`) whose
/// total length is unknown when the status line goes out.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n\r\n",
        status_reason(status)
    )
}

/// Writes one body chunk (`<hex len>\r\n<data>\r\n`). Empty payloads are
/// skipped — a zero-length chunk would terminate the body early.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")
}

/// Terminates a chunked body (`0\r\n\r\n`) and flushes the stream.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn finish_chunked(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

/// Writes one client request with a `Content-Length` body.
/// `extra_headers` go out verbatim after the standard ones.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_request(
    stream: &mut impl Write,
    method: &str,
    path: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Status line + headers of a response, before the body is consumed.
#[derive(Debug)]
pub struct ResponseHead {
    /// Numeric status code.
    pub status: u16,
    /// Parsed `Retry-After` header in seconds, when present and numeric.
    pub retry_after: Option<u64>,
    /// Whether the body uses `Transfer-Encoding: chunked`.
    pub chunked: bool,
    /// Declared `Content-Length` (0 when absent or chunked).
    pub content_length: usize,
    /// Whether the server asked for `Connection: close`.
    pub close: bool,
}

/// One fully-read HTTP response.
#[derive(Debug)]
pub struct Response {
    /// Numeric status code.
    pub status: u16,
    /// Parsed `Retry-After` header in seconds, when present and numeric.
    pub retry_after: Option<u64>,
    /// Body bytes (chunked bodies are reassembled).
    pub body: Vec<u8>,
    /// Whether the server asked for `Connection: close`.
    pub close: bool,
}

/// Reads a response's status line and headers, leaving the stream
/// positioned at the body. Streaming consumers follow with
/// [`read_chunk`] (chunked) or a sized read; buffered consumers use
/// [`read_response`] instead.
///
/// # Errors
///
/// I/O errors propagate; malformed status lines or headers surface as
/// [`io::ErrorKind::InvalidData`].
pub fn read_response_head(stream: &mut impl BufRead) -> io::Result<ResponseHead> {
    let line = read_line_bounded(stream, MAX_HEAD_BYTES)?;
    if line.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed before the status line",
        ));
    }
    let mut parts = line.split_whitespace();
    let status = match (parts.next(), parts.next()) {
        (Some(v), Some(code)) if v.starts_with("HTTP/1.") => code
            .parse::<u16>()
            .map_err(|_| bad_data(format!("bad status code in {line:?}")))?,
        _ => return Err(bad_data(format!("malformed status line {line:?}"))),
    };
    let mut head = ResponseHead {
        status,
        retry_after: None,
        chunked: false,
        content_length: 0,
        close: false,
    };
    let mut headers = 0usize;
    loop {
        let header = read_line_bounded(stream, MAX_HEAD_BYTES)?;
        if header.is_empty() {
            return Err(bad_data("connection closed mid-headers".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        headers += 1;
        if headers > MAX_HEADERS {
            return Err(bad_data(format!("more than {MAX_HEADERS} headers")));
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad_data(format!("malformed header {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                head.content_length = value
                    .parse()
                    .map_err(|_| bad_data(format!("bad content-length {value:?}")))?;
            }
            "transfer-encoding" => {
                head.chunked = value.to_ascii_lowercase().contains("chunked");
            }
            "retry-after" => head.retry_after = value.parse().ok(),
            "connection" => head.close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }
    Ok(head)
}

/// Reads one chunk of a chunked body: `Ok(Some(data))` per chunk,
/// `Ok(None)` at the terminator (trailers are consumed and discarded).
/// `max` bounds a single chunk's size.
///
/// # Errors
///
/// I/O errors propagate; malformed chunk framing surfaces as
/// [`io::ErrorKind::InvalidData`].
pub fn read_chunk(stream: &mut impl BufRead, max: usize) -> io::Result<Option<Vec<u8>>> {
    let line = read_line_bounded(stream, 128)?;
    let size_text = line.trim().split(';').next().unwrap_or("");
    let size = usize::from_str_radix(size_text, 16)
        .map_err(|_| bad_data(format!("bad chunk size {size_text:?}")))?;
    if size > max {
        return Err(bad_data(format!("chunk of {size} bytes exceeds {max}")));
    }
    if size == 0 {
        loop {
            let trailer = read_line_bounded(stream, MAX_HEAD_BYTES)?;
            if trailer.trim_end().is_empty() {
                break;
            }
        }
        return Ok(None);
    }
    let mut data = vec![0u8; size];
    stream.read_exact(&mut data)?;
    let mut crlf = [0u8; 2];
    stream.read_exact(&mut crlf)?;
    if &crlf != b"\r\n" {
        return Err(bad_data("chunk not CRLF-terminated".into()));
    }
    Ok(Some(data))
}

/// Reads one full response, reassembling chunked bodies. `max_body`
/// bounds the total body size.
///
/// # Errors
///
/// I/O errors propagate; malformed framing or a body over `max_body`
/// surfaces as [`io::ErrorKind::InvalidData`].
pub fn read_response(stream: &mut impl BufRead, max_body: usize) -> io::Result<Response> {
    let head = read_response_head(stream)?;
    let mut body = Vec::new();
    if head.chunked {
        while let Some(chunk) = read_chunk(stream, max_body)? {
            if body.len() + chunk.len() > max_body {
                return Err(bad_data(format!("response body exceeds {max_body} bytes")));
            }
            body.extend_from_slice(&chunk);
        }
    } else {
        if head.content_length > max_body {
            return Err(bad_data(format!(
                "response body of {} bytes exceeds {max_body}",
                head.content_length
            )));
        }
        body = vec![0u8; head.content_length];
        stream.read_exact(&mut body)?;
    }
    Ok(Response {
        status: head.status,
        retry_after: head.retry_after,
        body,
        close: head.close,
    })
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body_and_keepalive_sequencing() {
        let wire = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let first = read_request(&mut r).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/v1/predict");
        assert_eq!(first.body, b"abcd");
        assert!(!first.close);
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(second.body.is_empty());
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn connection_close_is_reported() {
        let wire = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert!(req.close);
    }

    #[test]
    fn rejects_malformed_request_lines_and_oversized_bodies() {
        for wire in [
            &b"FROB\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(wire)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{wire:?}");
        }
    }

    #[test]
    fn limited_read_classifies_oversized_and_overheaded_requests() {
        let limits = IngressLimits {
            max_body_bytes: 16,
            max_headers: 2,
        };
        let wire = b"POST /x HTTP/1.1\r\nContent-Length: 17\r\n\r\n";
        match read_request_limited(&mut BufReader::new(&wire[..]), &limits) {
            Err(RequestError::TooLarge(msg)) => assert!(msg.contains("17"), "{msg}"),
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let wire = b"GET /x HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        match read_request_limited(&mut BufReader::new(&wire[..]), &limits) {
            Err(RequestError::Bad(msg)) => assert!(msg.contains("headers"), "{msg}"),
            other => panic!("expected Bad, got {other:?}"),
        }
        // At the caps both requests pass.
        let wire = b"POST /x HTTP/1.1\r\na: 1\r\nContent-Length: 16\r\n\r\n0123456789abcdef";
        let req = read_request_limited(&mut BufReader::new(&wire[..]), &limits)
            .unwrap()
            .unwrap();
        assert_eq!(req.body.len(), 16);
    }

    #[test]
    fn unterminated_monster_line_is_rejected_without_buffering_it() {
        // A "request" that never sends '\n' must error at the line cap,
        // not accumulate until memory runs out.
        let monster = vec![b'A'; MAX_HEAD_BYTES * 4];
        let err = read_request(&mut BufReader::new(&monster[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("longer than"), "{err}");
    }

    #[test]
    fn response_has_correct_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("retry-after", "1")],
            b"{\"error\":\"queue full\"}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 22\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"),
            "{text}"
        );

        let mut out = Vec::new();
        write_response(&mut out, 504, "application/json", &[], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"),
            "{text}"
        );

        for (status, reason) in [(408, "Request Timeout"), (413, "Payload Too Large")] {
            let mut out = Vec::new();
            write_response(&mut out, status, "application/json", &[], b"{}").unwrap();
            let text = String::from_utf8(out).unwrap();
            assert!(
                text.starts_with(&format!("HTTP/1.1 {status} {reason}\r\n")),
                "{text}"
            );
        }
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/jsonl").unwrap();
        write_chunk(&mut out, b"hello\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"world\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out.clone()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("content-length"), "{text}");
        assert!(
            text.ends_with("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"),
            "{text}"
        );

        // The client half decodes what the server half wrote.
        let resp = read_response(&mut BufReader::new(&out[..]), 1 << 16).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, b"hello\nworld\n");
    }

    #[test]
    fn client_request_is_parseable_by_the_server_half() {
        let mut out = Vec::new();
        write_request(
            &mut out,
            "POST",
            "/v1/predict",
            &[("connection", "close")],
            b"{\"task\":\"link\"}",
        )
        .unwrap();
        let req = read_request(&mut BufReader::new(&out[..]))
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.body, b"{\"task\":\"link\"}");
        assert!(req.close);
    }

    #[test]
    fn client_response_parsing_reads_retry_after_and_fixed_bodies() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("retry-after", "7")],
            b"{\"error\":\"queue full\"}",
        )
        .unwrap();
        let resp = read_response(&mut BufReader::new(&out[..]), 1 << 16).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.retry_after, Some(7));
        assert_eq!(resp.body, b"{\"error\":\"queue full\"}");

        // Streaming head + chunk reads for the sweep path.
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/jsonl").unwrap();
        write_chunk(&mut out, b"line\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let mut r = BufReader::new(&out[..]);
        let head = read_response_head(&mut r).unwrap();
        assert!(head.chunked);
        assert_eq!(read_chunk(&mut r, 1 << 16).unwrap().unwrap(), b"line\n");
        assert!(read_chunk(&mut r, 1 << 16).unwrap().is_none());
    }

    #[test]
    fn oversized_response_bodies_are_rejected() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "application/json", &[], &[b'x'; 64]).unwrap();
        let err = read_response(&mut BufReader::new(&out[..]), 16).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
