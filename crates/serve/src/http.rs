//! Hand-rolled HTTP/1.1 framing over `std::io` streams.
//!
//! The daemon speaks just enough HTTP for its three endpoints: request
//! line + headers + `Content-Length` body in, fixed-length response out
//! (no chunked encoding, no TLS, no HTTP/2). Connections are keep-alive
//! by default per HTTP/1.1; [`read_request`] returns `Ok(None)` on a
//! clean close so connection loops terminate without an error.

use std::io::{self, BufRead, Write};

/// Maximum accepted header-section size (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Maximum accepted request-body size (a predict request of ~100k
/// queries fits comfortably; anything bigger is a client bug).
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// One parsed HTTP request.
#[derive(Debug)]
pub struct Request {
    /// Upper-cased method (`GET`, `POST`, …).
    pub method: String,
    /// Request target as sent (path + optional query string).
    pub path: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked for `Connection: close`.
    pub close: bool,
}

/// Reads one `\n`-terminated line of at most `max` bytes. A longer line
/// errors *before* buffering it all (the cap on line length is what
/// bounds memory use per connection; `MAX_HEAD_BYTES` alone would not,
/// since it is only checked between lines).
fn read_line_bounded(stream: &mut impl BufRead, max: usize) -> io::Result<String> {
    let mut buf = Vec::with_capacity(128);
    let mut limited = io::Read::take(io::Read::by_ref(stream), max as u64 + 1);
    limited.read_until(b'\n', &mut buf)?;
    if buf.len() > max {
        return Err(bad_data(format!("line longer than {max} bytes")));
    }
    String::from_utf8(buf).map_err(|_| bad_data("non-UTF-8 header bytes".into()))
}

/// Reads one request off a buffered stream.
///
/// Returns `Ok(None)` when the peer closed the connection cleanly before
/// sending a request line (the keep-alive loop's exit).
///
/// # Errors
///
/// I/O errors propagate; protocol violations (missing version, oversized
/// head or body, bad `Content-Length`) surface as
/// [`io::ErrorKind::InvalidData`] and the connection should be dropped
/// after a `400`.
pub fn read_request(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
    let line = read_line_bounded(stream, MAX_HEAD_BYTES)?;
    if line.is_empty() {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) if v.starts_with("HTTP/1.") => {
            (m.to_ascii_uppercase(), p.to_string(), v)
        }
        _ => return Err(bad_data(format!("malformed request line {line:?}"))),
    };
    let _ = version;

    let mut content_length = 0usize;
    let mut close = false;
    let mut head_bytes = line.len();
    loop {
        let header = read_line_bounded(stream, MAX_HEAD_BYTES)?;
        if header.is_empty() {
            return Err(bad_data("connection closed mid-headers".into()));
        }
        head_bytes += header.len();
        if head_bytes > MAX_HEAD_BYTES {
            return Err(bad_data("header section too large".into()));
        }
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            return Err(bad_data(format!("malformed header {header:?}")));
        };
        let value = value.trim();
        match name.to_ascii_lowercase().as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| bad_data(format!("bad content-length {value:?}")))?;
                if content_length > MAX_BODY_BYTES {
                    return Err(bad_data(format!(
                        "body of {content_length} bytes too large"
                    )));
                }
            }
            "connection" => close = value.eq_ignore_ascii_case("close"),
            _ => {}
        }
    }

    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request {
        method,
        path,
        body,
        close,
    }))
}

/// Writes one fixed-length response. `extra_headers` go out verbatim
/// after the standard ones (e.g. `("retry-after", "1")` on `503`).
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_response(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\n",
        body.len()
    )?;
    for (name, value) in extra_headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    stream.write_all(b"\r\n")?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes the head of a `Transfer-Encoding: chunked` response. The body
/// must follow as zero or more [`write_chunk`] calls terminated by
/// [`finish_chunked`]. Used by streaming endpoints (`/v1/sweep`) whose
/// total length is unknown when the status line goes out.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_chunked_head(
    stream: &mut impl Write,
    status: u16,
    content_type: &str,
) -> io::Result<()> {
    let reason = match status {
        200 => "OK",
        _ => "Internal Server Error",
    };
    write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ntransfer-encoding: chunked\r\n\r\n"
    )
}

/// Writes one body chunk (`<hex len>\r\n<data>\r\n`). Empty payloads are
/// skipped — a zero-length chunk would terminate the body early.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn write_chunk(stream: &mut impl Write, data: &[u8]) -> io::Result<()> {
    if data.is_empty() {
        return Ok(());
    }
    write!(stream, "{:x}\r\n", data.len())?;
    stream.write_all(data)?;
    stream.write_all(b"\r\n")
}

/// Terminates a chunked body (`0\r\n\r\n`) and flushes the stream.
///
/// # Errors
///
/// Propagates stream I/O errors.
pub fn finish_chunked(stream: &mut impl Write) -> io::Result<()> {
    stream.write_all(b"0\r\n\r\n")?;
    stream.flush()
}

fn bad_data(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    #[test]
    fn parses_post_with_body_and_keepalive_sequencing() {
        let wire = b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcdGET /healthz HTTP/1.1\r\n\r\n";
        let mut r = BufReader::new(&wire[..]);
        let first = read_request(&mut r).unwrap().unwrap();
        assert_eq!(first.method, "POST");
        assert_eq!(first.path, "/v1/predict");
        assert_eq!(first.body, b"abcd");
        assert!(!first.close);
        let second = read_request(&mut r).unwrap().unwrap();
        assert_eq!(second.method, "GET");
        assert_eq!(second.path, "/healthz");
        assert!(second.body.is_empty());
        assert!(read_request(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn connection_close_is_reported() {
        let wire = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = read_request(&mut BufReader::new(&wire[..]))
            .unwrap()
            .unwrap();
        assert!(req.close);
    }

    #[test]
    fn rejects_malformed_request_lines_and_oversized_bodies() {
        for wire in [
            &b"FROB\r\n\r\n"[..],
            &b"GET /x SPDY/3\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nContent-Length: 999999999999\r\n\r\n"[..],
            &b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n"[..],
        ] {
            let err = read_request(&mut BufReader::new(wire)).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "{wire:?}");
        }
    }

    #[test]
    fn unterminated_monster_line_is_rejected_without_buffering_it() {
        // A "request" that never sends '\n' must error at the line cap,
        // not accumulate until memory runs out.
        let monster = vec![b'A'; MAX_HEAD_BYTES * 4];
        let err = read_request(&mut BufReader::new(&monster[..])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("longer than"), "{err}");
    }

    #[test]
    fn response_has_correct_framing() {
        let mut out = Vec::new();
        write_response(
            &mut out,
            503,
            "application/json",
            &[("retry-after", "1")],
            b"{\"error\":\"queue full\"}",
        )
        .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"),
            "{text}"
        );
        assert!(text.contains("content-length: 22\r\n"), "{text}");
        assert!(text.contains("retry-after: 1\r\n"), "{text}");
        assert!(
            text.ends_with("\r\n\r\n{\"error\":\"queue full\"}"),
            "{text}"
        );

        let mut out = Vec::new();
        write_response(&mut out, 504, "application/json", &[], b"{}").unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(
            text.starts_with("HTTP/1.1 504 Gateway Timeout\r\n"),
            "{text}"
        );
    }

    #[test]
    fn chunked_framing_round_trips() {
        let mut out = Vec::new();
        write_chunked_head(&mut out, 200, "application/jsonl").unwrap();
        write_chunk(&mut out, b"hello\n").unwrap();
        write_chunk(&mut out, b"").unwrap(); // skipped, not a terminator
        write_chunk(&mut out, b"world\n").unwrap();
        finish_chunked(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("transfer-encoding: chunked\r\n"), "{text}");
        assert!(!text.contains("content-length"), "{text}");
        assert!(
            text.ends_with("6\r\nhello\n\r\n6\r\nworld\n\r\n0\r\n\r\n"),
            "{text}"
        );
    }
}
