//! The serving engine: a bounded query queue, response fan-out slots,
//! and the scheduler-worker loop that turns concurrent singleton
//! requests into packed block-diagonal batches.
//!
//! Data flow: producer threads (HTTP connections, or a bench driver)
//! call [`Engine::submit`] with one request's queries — each query
//! becomes a [`Job`] holding a shared [`ResponseSlot`]. Scheduler
//! workers loop on [`Engine::run_worker`]: drain one kind-pure batch
//! from the queue (up to `max_batch` jobs or `max_wait`, whichever
//! flushes first), run it through an [`InferenceSession`]'s
//! heterogeneous batch entry point, and write each result back into its
//! slot, waking the waiting producer. The producer observes exactly the
//! numbers a direct `predict_link_batch`/`predict_reg_batch` call would
//! produce — batching changes throughput, never values.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use circuitgps::{InferenceSession, Query};

use crate::metrics::Metrics;
use crate::queue::{BoundedQueue, PushError};

/// The task a query runs under. Kinds are never mixed inside one model
/// batch: link queries use the link head, coupling/ground queries the
/// regression head, and coupling vs. ground differ in sampler (1-hop
/// pair vs. 2-hop node subgraphs), so packing them would change nothing
/// semantically but would blur the per-kind latency accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Link-existence probability for a candidate pair.
    Link,
    /// Normalized coupling capacitance for a pair.
    Coupling,
    /// Normalized ground capacitance for a single node.
    Ground,
}

impl TaskKind {
    fn query(self, key: (u32, u32)) -> Query {
        match self {
            TaskKind::Link => Query::Link(key.0, key.1),
            TaskKind::Coupling => Query::Coupling(key.0, key.1),
            TaskKind::Ground => Query::Ground(key.0),
        }
    }
}

/// One enqueued query: its task, its key (`(n, n)` for ground queries),
/// where its answer goes, and when it entered the queue (for the latency
/// counters).
#[derive(Debug)]
pub struct Job {
    kind: TaskKind,
    key: (u32, u32),
    slot: Arc<ResponseSlot>,
    index: usize,
    enqueued: Instant,
}

#[derive(Debug)]
struct SlotState {
    results: Vec<f32>,
    remaining: usize,
}

/// Completion rendezvous for one submitted request: the producer blocks
/// in [`ResponseSlot::wait`] while workers fill results in, possibly
/// from several different batches (a request larger than `max_batch`
/// spans batches; two requests can land in one batch).
#[derive(Debug)]
pub struct ResponseSlot {
    state: Mutex<SlotState>,
    done: Condvar,
}

impl ResponseSlot {
    fn new(n: usize) -> Arc<Self> {
        Arc::new(ResponseSlot {
            state: Mutex::new(SlotState {
                results: vec![0.0; n],
                remaining: n,
            }),
            done: Condvar::new(),
        })
    }

    fn fill(&self, index: usize, value: f32) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        s.results[index] = value;
        s.remaining -= 1;
        if s.remaining == 0 {
            drop(s);
            self.done.notify_all();
        }
    }

    /// Blocks until every query of the request is answered, then returns
    /// the predictions in submission order.
    pub fn wait(&self) -> Vec<f32> {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.remaining > 0 {
            s = self.done.wait(s).unwrap_or_else(PoisonError::into_inner);
        }
        s.results.clone()
    }

    /// [`ResponseSlot::wait`] with a deadline: returns `None` if the
    /// request is not fully answered within `timeout` (the HTTP layer
    /// turns that into `504`). The jobs stay queued and workers still
    /// fill the slot eventually — abandoning the wait leaks nothing, the
    /// `Arc` keeps the slot alive until the last fill.
    pub fn wait_deadline(&self, timeout: Duration) -> Option<Vec<f32>> {
        let deadline = Instant::now() + timeout;
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        while s.remaining > 0 {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .done
                .wait_timeout(s, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            s = guard;
        }
        Some(s.results.clone())
    }
}

/// Rejection reasons from [`Engine::submit`].
#[derive(Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue lacks room for the whole request (respond `503`).
    QueueFull,
    /// The engine is shutting down.
    ShuttingDown,
    /// A pair query has identical endpoints (caught at submit time so a
    /// bad key can never panic a scheduler worker).
    IdenticalEndpoints {
        /// Index of the offending key in the submitted slice.
        index: usize,
    },
}

/// The shared serving engine; see the module docs for the data flow.
#[derive(Debug)]
pub struct Engine {
    queue: BoundedQueue<Job>,
    metrics: Metrics,
    max_batch: usize,
    max_wait: Duration,
    /// Exponentially-weighted moving average of batch service time in
    /// µs (`new = (7·old + sample) / 8`; 0 until the first batch). The
    /// load-shedding layer uses it to predict queue sojourn and to
    /// compute the `Retry-After` it advertises on `503`.
    recent_batch_us: AtomicU64,
    /// Brownout latch with hysteresis: set when the queue climbs past
    /// 3/4 of capacity, cleared when it falls back under 1/4. While set,
    /// workers shrink the batching wait window to 1/8 of `max_wait` —
    /// trading batch occupancy for drain rate under sustained pressure.
    brownout: AtomicBool,
}

impl Engine {
    /// Creates an engine whose workers flush a batch at `max_batch` jobs
    /// or after `max_wait`, whichever comes first, over a queue of
    /// `queue_capacity` jobs.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0` or `queue_capacity < max_batch`.
    pub fn new(max_batch: usize, max_wait: Duration, queue_capacity: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        assert!(
            queue_capacity >= max_batch,
            "queue must hold at least one full batch"
        );
        Engine {
            queue: BoundedQueue::new(queue_capacity),
            metrics: Metrics::default(),
            max_batch,
            max_wait,
            recent_batch_us: AtomicU64::new(0),
            brownout: AtomicBool::new(false),
        }
    }

    /// The engine's serving counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Current queue depth (for `/metrics`).
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The configured flush threshold.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// EWMA of batch service time in µs (0 until the first batch runs).
    pub fn recent_batch_us(&self) -> u64 {
        self.recent_batch_us.load(Ordering::Relaxed)
    }

    /// Whether the brownout latch is set (see [`Engine`]'s field docs).
    pub fn in_brownout(&self) -> bool {
        self.brownout.load(Ordering::Relaxed)
    }

    /// Re-evaluates the brownout latch against the current queue depth.
    /// Called on every submit and batch pop; cheap (two relaxed atomics).
    fn update_pressure(&self) {
        let depth = self.queue.len();
        let cap = self.queue.capacity();
        if depth * 4 >= cap * 3 {
            if !self.brownout.swap(true, Ordering::Relaxed) {
                Metrics::inc(&self.metrics.brownout_entered_total);
            }
        } else if depth * 4 <= cap {
            self.brownout.store(false, Ordering::Relaxed);
        }
    }

    /// The queue's capacity — the largest request that can ever be
    /// accepted in one [`Engine::submit`] (bigger ones must be split by
    /// the caller; the HTTP layer rejects them with `400`, not `503`,
    /// because retrying cannot help).
    pub fn queue_capacity(&self) -> usize {
        self.queue.capacity()
    }

    /// Submits one request's queries; all enqueue or none do.
    ///
    /// Returns the slot to [`ResponseSlot::wait`] on.
    ///
    /// Node ids are **not** range-checked here (the engine does not know
    /// the graph); callers must validate them against the served graph,
    /// as the HTTP layer does. An out-of-range id makes the worker's
    /// prediction panic, which is answered with NaN (see
    /// [`Engine::run_worker`]) rather than crashing the daemon.
    ///
    /// # Errors
    ///
    /// [`SubmitError::QueueFull`] under backpressure,
    /// [`SubmitError::ShuttingDown`] after [`Engine::shutdown`],
    /// [`SubmitError::IdenticalEndpoints`] for a pair query with
    /// `a == b`.
    pub fn submit(
        &self,
        kind: TaskKind,
        keys: &[(u32, u32)],
    ) -> Result<Arc<ResponseSlot>, SubmitError> {
        assert!(!keys.is_empty(), "a request needs at least one query");
        if !matches!(kind, TaskKind::Ground) {
            if let Some(index) = keys.iter().position(|&(a, b)| a == b) {
                return Err(SubmitError::IdenticalEndpoints { index });
            }
        }
        let slot = ResponseSlot::new(keys.len());
        let now = Instant::now();
        let jobs: Vec<Job> = keys
            .iter()
            .enumerate()
            .map(|(index, &key)| Job {
                kind,
                key,
                slot: slot.clone(),
                index,
                enqueued: now,
            })
            .collect();
        match self.queue.try_push_all(jobs) {
            Ok(()) => {
                self.metrics
                    .queries_total
                    .fetch_add(keys.len() as u64, Ordering::Relaxed);
                self.update_pressure();
                Ok(slot)
            }
            Err(PushError::Full(_)) => {
                Metrics::inc(&self.metrics.rejected_queue_full);
                Err(SubmitError::QueueFull)
            }
            Err(PushError::Closed(_)) => Err(SubmitError::ShuttingDown),
        }
    }

    /// Scheduler-worker loop: drains kind-pure batches and answers them
    /// through `session` until the engine shuts down and the backlog is
    /// empty. Run one worker per scheduler thread, each with its own
    /// session (sessions share the model weights via
    /// [`InferenceSession::shared`], but keep private sampler scratch
    /// and prepared-sample caches).
    ///
    /// A panic inside the prediction (e.g. an out-of-range node id from
    /// an embedder that skipped validation) is caught: every query of
    /// the failed batch is answered with `NaN`, `worker_panics_total` is
    /// bumped, and the worker keeps serving — producers blocked in
    /// [`ResponseSlot::wait`] are never stranded.
    pub fn run_worker(&self, session: &mut InferenceSession<'_>) {
        loop {
            // Under brownout, stop waiting around for batch company:
            // pressure guarantees company, and a shorter window drains
            // the queue faster.
            let wait = if self.in_brownout() {
                self.max_wait / 8
            } else {
                self.max_wait
            };
            let Some(batch) = self
                .queue
                .pop_batch_by(self.max_batch, wait, |job: &Job| job.kind)
            else {
                break;
            };
            self.update_pressure();
            // Chaos hook: `delay:MS` here stalls the batch after it left
            // the queue — producers hit their request deadline (504)
            // instead of hanging.
            cirgps_failpoints::eval("serve.queue.pop");
            self.metrics.observe_batch(batch.len());
            let queries: Vec<Query> = batch.iter().map(|j| j.kind.query(j.key)).collect();
            let service_start = Instant::now();
            // The session's per-query state (cache inserts) stays
            // consistent across an unwind; no partial mutation spans
            // queries.
            let preds = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // Chaos hook: an injected panic lands inside the unwind
                // boundary, exactly like a prediction bug would.
                cirgps_failpoints::eval("serve.worker.predict");
                session.predict_batch(&queries)
            }))
            .unwrap_or_else(|_| {
                Metrics::inc(&self.metrics.worker_panics);
                vec![f32::NAN; batch.len()]
            });
            let sample_us = service_start.elapsed().as_micros() as u64;
            let old = self.recent_batch_us.load(Ordering::Relaxed);
            let ewma = if old == 0 {
                sample_us.max(1)
            } else {
                ((7 * old + sample_us) / 8).max(1)
            };
            self.recent_batch_us.store(ewma, Ordering::Relaxed);
            let now = Instant::now();
            for (job, pred) in batch.into_iter().zip(preds) {
                self.metrics.observe_latency_us(
                    now.saturating_duration_since(job.enqueued).as_micros() as u64,
                );
                job.slot.fill(job.index, pred);
            }
        }
    }

    /// Stops the engine: pending jobs still complete, then workers exit.
    pub fn shutdown(&self) {
        self.queue.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_collects_out_of_order_fills() {
        let slot = ResponseSlot::new(3);
        slot.fill(2, 0.3);
        slot.fill(0, 0.1);
        slot.fill(1, 0.2);
        assert_eq!(slot.wait(), vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn submit_is_rejected_under_backpressure_and_after_shutdown() {
        let engine = Engine::new(4, Duration::ZERO, 4);
        // No worker running: jobs stay queued.
        let _slot = engine
            .submit(TaskKind::Link, &[(0, 1), (1, 2), (2, 3)])
            .unwrap();
        assert_eq!(
            engine
                .submit(TaskKind::Link, &[(3, 4), (4, 5)])
                .unwrap_err(),
            SubmitError::QueueFull
        );
        assert_eq!(
            engine.queue_depth(),
            3,
            "rejected request left no jobs behind"
        );
        engine.shutdown();
        assert_eq!(
            engine.submit(TaskKind::Link, &[(5, 6)]).unwrap_err(),
            SubmitError::ShuttingDown
        );
    }

    #[test]
    fn brownout_latch_sets_at_three_quarters_depth_once() {
        let engine = Engine::new(2, Duration::ZERO, 8);
        // No worker running: jobs accumulate.
        let _a = engine
            .submit(TaskKind::Link, &[(0, 1), (1, 2), (2, 3)])
            .unwrap();
        assert!(!engine.in_brownout(), "3/8 is under the 3/4 threshold");
        let _b = engine
            .submit(TaskKind::Link, &[(3, 4), (4, 5), (5, 6)])
            .unwrap();
        assert!(engine.in_brownout(), "6/8 crosses the 3/4 threshold");
        let _c = engine.submit(TaskKind::Link, &[(6, 7)]).unwrap();
        assert!(engine.in_brownout());
        assert_eq!(
            engine
                .metrics()
                .brownout_entered_total
                .load(Ordering::Relaxed),
            1,
            "the transition counts once, not per submit"
        );
        assert_eq!(engine.recent_batch_us(), 0, "no batch has run yet");
    }

    #[test]
    fn identical_pair_endpoints_are_rejected_at_submit() {
        let engine = Engine::new(4, Duration::ZERO, 8);
        assert_eq!(
            engine
                .submit(TaskKind::Link, &[(0, 1), (3, 3)])
                .unwrap_err(),
            SubmitError::IdenticalEndpoints { index: 1 }
        );
        assert_eq!(
            engine.submit(TaskKind::Coupling, &[(7, 7)]).unwrap_err(),
            SubmitError::IdenticalEndpoints { index: 0 }
        );
        assert_eq!(engine.queue_depth(), 0, "no jobs from rejected requests");
        // Ground queries use (n, n) keys by design.
        assert!(engine.submit(TaskKind::Ground, &[(7, 7)]).is_ok());
    }
}
