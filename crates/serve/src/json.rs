//! A minimal JSON parser and writer for the wire protocol.
//!
//! The offline build has no `serde_json` (the workspace `serde` is a
//! no-op derive shim), so the daemon parses request bodies with this
//! ~150-line recursive-descent parser. It accepts strict RFC 8259 JSON
//! minus two conveniences nobody on this protocol needs: `\u` escapes
//! decode only the BMP (no surrogate pairs) and numbers parse through
//! `f64` (exact for every u32 node id the protocol carries).
//!
//! Responses are assembled by hand with [`escape`] and Rust's shortest
//! round-trip float formatting (`{}` on an `f32` prints a string that
//! parses back to the *bit-identical* value — the loopback test relies
//! on this to prove server responses equal direct engine calls).

use std::collections::BTreeMap;

/// Maximum container nesting depth. The parser is recursive-descent, so
/// without a cap a hostile body of `[[[[…` would overflow the stack —
/// an abort, not a catchable error. 128 levels is far beyond anything
/// the protocol produces (requests nest 3 deep).
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (integers are exact up to 2^53).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is not preserved.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (`None` for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `u32` (node ids).
    pub fn as_u32(&self) -> Option<u32> {
        let v = self.as_f64()?;
        (v >= 0.0 && v <= u32::MAX as f64 && v.fract() == 0.0).then_some(v as u32)
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes `s` for embedding in a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.nested(Parser::array),
            Some(b'{') => self.nested(Parser::object),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number {text:?} at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                            );
                        }
                        other => {
                            return Err(format!("bad escape \\{:?}", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences pass
                    // through unchanged; the input is a &str so it is
                    // valid UTF-8 by construction).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn nested(&mut self, parse: fn(&mut Self) -> Result<Json, String>) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!(
                "nesting deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            ));
        }
        self.depth += 1;
        let v = parse(self);
        self.depth -= 1;
        v
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_predict_request_shape() {
        let v = Json::parse(r#"{"task":"link","pairs":[[12, 57],[3,4]]}"#).unwrap();
        assert_eq!(v.get("task").and_then(Json::as_str), Some("link"));
        let pairs = v.get("pairs").and_then(Json::as_arr).unwrap();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].as_arr().unwrap()[1].as_u32(), Some(57));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "nulll x",
            "\"unterminated",
            "12 34",
            "{\"a\":--3}",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_a_stack_overflow() {
        let deep = "[".repeat(10_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        let deep_obj = "{\"a\":".repeat(10_000);
        assert!(Json::parse(&deep_obj).is_err());
        // At or under the cap still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn as_u32_rejects_fractions_negatives_and_overflow() {
        assert_eq!(Json::Num(7.0).as_u32(), Some(7));
        assert_eq!(Json::Num(-1.0).as_u32(), None);
        assert_eq!(Json::Num(1.5).as_u32(), None);
        assert_eq!(Json::Num(5e12).as_u32(), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\nA"));
        assert_eq!(escape("a\"b\\c\nA"), r#"a\"b\\c\nA"#);
    }

    #[test]
    fn f32_shortest_formatting_round_trips_bitwise() {
        // The serving protocol's exactness contract: format-with-Display
        // then parse returns the identical f32 bits.
        for v in [0.123_456_79_f32, 1.0e-12, 0.999999, f32::MIN_POSITIVE] {
            let text = format!("{v}");
            let back: f32 = text.parse().unwrap();
            assert_eq!(v.to_bits(), back.to_bits(), "{text}");
        }
    }
}
