//! Fault-injection tests for the serving daemon, driven by the
//! `cirgps-failpoints` registry (compiled in via the `failpoints`
//! feature; see `docs/robustness.md` for the failpoint catalog).
//!
//! Everything lives in ONE test function because the failpoint registry
//! is process-global: two concurrent `#[test]`s arming points would
//! race. The scenarios, in order:
//!
//! 1. an injected worker panic is contained — the request is still
//!    answered (with NaN), `worker_panics` ticks, and the daemon keeps
//!    serving correct answers afterwards;
//! 2. an injected batch stall turns into a `504 deadline exceeded` for
//!    the waiting client instead of a hang, and once the stall clears
//!    the daemon recovers to normal `200`s.
#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::time::Duration;

use circuit_graph::{CircuitGraph, EdgeType, GraphBuilder, NodeType};
use circuitgps::{AttnKind, CircuitGps, ModelConfig, MpnnKind};
use cirgps_failpoints as fp;
use cirgps_serve::{ServeConfig, Server};
use subgraph_sample::SamplerConfig;

/// How long an injected stall holds the single worker hostage.
const STALL: Duration = Duration::from_millis(2000);
/// Per-request deadline — well under `STALL`, well over a healthy
/// tiny-model prediction.
const DEADLINE: Duration = Duration::from_millis(500);

fn toy_graph() -> (CircuitGraph, Vec<(u32, u32)>) {
    let mut b = GraphBuilder::new();
    let hub = b.add_node(NodeType::Net, "hub");
    let mut pins = Vec::new();
    for i in 0..8 {
        let p = b.add_node(NodeType::Pin, &format!("p{i}"));
        b.set_xc(p, 0, (i % 3) as f32);
        b.add_edge(hub, p, EdgeType::NetPin);
        pins.push(p);
    }
    let pairs = pins.windows(2).map(|w| (w[0], w[1])).collect();
    (b.build(), pairs)
}

fn small_model() -> CircuitGps {
    CircuitGps::new(ModelConfig {
        hidden_dim: 16,
        pe_dim: 4,
        heads: 2,
        num_layers: 2,
        mpnn: MpnnKind::GatedGcn,
        attn: AttnKind::Transformer,
        ..Default::default()
    })
}

fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

fn first_prob(body: &str) -> f32 {
    let needle = "\"probs\":[";
    let start = body
        .find(needle)
        .unwrap_or_else(|| panic!("no probs in {body}"))
        + needle.len();
    let end = start + body[start..].find([',', ']']).expect("array end");
    body[start..end].parse::<f32>().expect("f32")
}

fn predict(addr: SocketAddr, pair: (u32, u32)) -> (u16, String) {
    http(
        addr,
        "POST",
        "/v1/predict",
        &format!("{{\"task\":\"link\",\"pairs\":[[{},{}]]}}", pair.0, pair.1),
    )
}

#[test]
fn injected_worker_panic_and_batch_stall_are_survived() {
    fp::clear_all();
    let (graph, pairs) = toy_graph();
    let server = Server::new(
        small_model(),
        graph,
        "CHAOS".into(),
        ServeConfig {
            max_batch: 4,
            max_wait: Duration::from_millis(1),
            workers: 1,
            queue_capacity: 64,
            cache_capacity: 64,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            read_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(2),
            request_timeout: DEADLINE,
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // --- Scenario 1: worker panic mid-predict --------------------
        // The next (and only the next) batch panics inside the model.
        fp::set("serve.worker.predict", "panic@1");
        let (status, body) = predict(addr, pairs[0]);
        assert_eq!(status, 200, "{body}");
        assert!(
            first_prob(&body).is_nan(),
            "panicked batch must answer NaN, got {body}"
        );
        let panics = server
            .engine()
            .metrics()
            .worker_panics
            .load(Ordering::Relaxed);
        assert_eq!(panics, 1, "worker panic must be counted");

        // The daemon survives: same query now gets a real probability.
        let (status, body) = predict(addr, pairs[0]);
        assert_eq!(status, 200, "{body}");
        let p = first_prob(&body);
        assert!(p.is_finite() && (0.0..=1.0).contains(&p), "{body}");

        // --- Scenario 2: stalled batch -> 504, then recovery ---------
        fp::clear_all();
        fp::set("serve.queue.pop", &format!("delay:{}@1", STALL.as_millis()));
        let (status, body) = predict(addr, pairs[1]);
        assert_eq!(status, 504, "stalled batch must time out: {body}");
        assert!(body.contains("deadline exceeded"), "{body}");
        let timeouts = server
            .engine()
            .metrics()
            .requests_timeout
            .load(Ordering::Relaxed);
        assert_eq!(timeouts, 1, "timeout must be counted");

        // Let the stalled worker wake and flush its abandoned batch,
        // then verify the daemon is healthy again.
        std::thread::sleep(STALL);
        fp::clear_all();
        let (status, body) = predict(addr, pairs[2]);
        assert_eq!(status, 200, "daemon must recover after the stall: {body}");
        assert!(first_prob(&body).is_finite(), "{body}");
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        server.shutdown(addr);
    });
}
