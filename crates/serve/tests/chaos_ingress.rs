//! Ingress fault-injection and overload soak for the serving daemon,
//! driven by the `cirgps-failpoints` registry (see `docs/robustness.md`
//! for the catalog). Separate from `chaos.rs` because the registry is
//! process-global: a separate integration-test binary is a separate
//! process, so these armed points cannot race that file's.
//!
//! Everything lives in ONE test function for the same reason. The
//! scenarios, in order:
//!
//! 1. a torn response (`serve.ingress.write=truncate:N`) leaves the
//!    daemon healthy — the *next* connection gets a full answer;
//! 2. a stalled read path (`serve.ingress.read=delay:MS`) blows the
//!    ingress deadline and is shed with `408`, counted;
//! 3. an injected mid-sweep chunk failure (`serve.sweep.chunk=error`)
//!    aborts one sweep without wedging its worker or the daemon;
//! 4. an overload soak: the one worker is stalled while a burst of
//!    well-formed, malformed, and oversized clients hits the daemon —
//!    every request gets a bounded, *named* answer (200/400/413/503/504,
//!    never a hang), the queue-full 503 carries a load-aware
//!    `Retry-After`, and the daemon serves normally once the stall
//!    clears.
#![cfg(feature = "failpoints")]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use circuit_graph::{CircuitGraph, EdgeType, GraphBuilder, NodeType};
use circuitgps::{AttnKind, CircuitGps, ModelConfig, MpnnKind};
use cirgps_failpoints as fp;
use cirgps_serve::{ServeConfig, Server};
use subgraph_sample::SamplerConfig;

/// How long an injected stall holds the single worker hostage.
const STALL: Duration = Duration::from_millis(1500);
/// Per-request deadline — under `STALL`, over a healthy prediction.
const DEADLINE: Duration = Duration::from_millis(400);

fn toy_graph() -> (CircuitGraph, Vec<(u32, u32)>) {
    let mut b = GraphBuilder::new();
    let hub = b.add_node(NodeType::Net, "hub");
    let mut pins = Vec::new();
    for i in 0..8 {
        let p = b.add_node(NodeType::Pin, &format!("p{i}"));
        b.set_xc(p, 0, (i % 3) as f32);
        b.add_edge(hub, p, EdgeType::NetPin);
        pins.push(p);
    }
    let pairs = pins.windows(2).map(|w| (w[0], w[1])).collect();
    (b.build(), pairs)
}

fn small_model() -> CircuitGps {
    CircuitGps::new(ModelConfig {
        hidden_dim: 16,
        pe_dim: 4,
        heads: 2,
        num_layers: 2,
        mpnn: MpnnKind::GatedGcn,
        attn: AttnKind::Transformer,
        ..Default::default()
    })
}

/// One request on its own connection; returns `(status, retry_after,
/// body)`. Unlike the strict helpers elsewhere, a torn/empty response
/// is reported as status `0` instead of a panic — several scenarios
/// *expect* the wire to break.
fn http_lenient(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Option<u64>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let _ = write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    if reader.read_line(&mut status_line).unwrap_or(0) == 0 {
        return (0, None, String::new());
    }
    let Some(status) = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
    else {
        return (0, None, status_line);
    };
    let mut content_length = 0usize;
    let mut retry_after = None;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            return (0, retry_after, String::new());
        }
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse().unwrap_or(0);
        }
        if let Some(v) = line.strip_prefix("retry-after:") {
            retry_after = v.trim().parse().ok();
        }
    }
    let mut body = vec![0u8; content_length];
    if reader.read_exact(&mut body).is_err() {
        return (0, retry_after, String::new());
    }
    (status, retry_after, String::from_utf8_lossy(&body).into())
}

fn predict_body(pair: (u32, u32)) -> String {
    format!("{{\"task\":\"link\",\"pairs\":[[{},{}]]}}", pair.0, pair.1)
}

fn counter(addr: SocketAddr, name: &str) -> u64 {
    let (status, _, body) = http_lenient(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("cirgps_serve_{name} ")))
        .unwrap_or_else(|| panic!("no {name} row"))
        .parse()
        .unwrap()
}

#[test]
fn ingress_faults_and_overload_are_survived_with_named_answers() {
    fp::clear_all();
    let (graph, pairs) = toy_graph();
    let server = Server::new(
        small_model(),
        graph,
        "CHAOS".into(),
        ServeConfig {
            max_batch: 2,
            max_wait: Duration::from_millis(1),
            workers: 1,
            queue_capacity: 4,
            cache_capacity: 64,
            sampler: SamplerConfig {
                hops: 1,
                max_nodes: 64,
            },
            read_timeout: Duration::from_secs(5),
            drain_timeout: Duration::from_secs(2),
            request_timeout: DEADLINE,
            ingress_timeout: Duration::from_millis(250),
            max_body_bytes: 4096,
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // --- Scenario 1: torn response ------------------------------
        // The next response is truncated after 20 wire bytes: the
        // client sees a broken reply, the daemon must not care.
        fp::set("serve.ingress.write", "truncate:20@1");
        let (status, _, _) = http_lenient(addr, "POST", "/v1/predict", &predict_body(pairs[0]));
        assert_eq!(status, 0, "truncated response must be torn on the wire");
        fp::clear_all();
        let (status, _, body) = http_lenient(addr, "POST", "/v1/predict", &predict_body(pairs[0]));
        assert_eq!(status, 200, "daemon must survive a torn write: {body}");

        // --- Scenario 2: slow-loris read path -----------------------
        // The client sends only the head of a request whose body never
        // arrives, while every server-side read is delayed 400 ms. The
        // first read returns the head and arms the 250 ms ingress
        // deadline; the delayed second read blows it: 408, counted.
        let before_408 = counter(addr, "requests_ingress_timeout_total");
        fp::set("serve.ingress.read", "delay:400");
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            write!(
                stream,
                "POST /v1/predict HTTP/1.1\r\nHost: chaos\r\nContent-Length: 40\r\n\r\n"
            )
            .expect("send head");
            let mut resp = String::new();
            let _ = BufReader::new(stream).read_to_string(&mut resp);
            assert!(resp.contains("408"), "slow ingress must be shed: {resp}");
            assert!(resp.contains("read deadline exceeded"), "{resp}");
        }
        fp::clear_all();
        assert_eq!(
            counter(addr, "requests_ingress_timeout_total"),
            before_408 + 1
        );

        // --- Scenario 3: mid-sweep chunk failure --------------------
        // The sweep's first chunk write is injected to fail; the sweep
        // aborts, the connection tears, and the daemon keeps serving.
        fp::set("serve.sweep.chunk", "error@1");
        let pair_list = pairs
            .iter()
            .map(|&(a, b)| format!("[{a},{b}]"))
            .collect::<Vec<_>>()
            .join(",");
        let sweep = format!("{{\"task\":\"link\",\"pairs\":[{pair_list}],\"chunk\":1}}");
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        write!(
            stream,
            "POST /v1/sweep HTTP/1.1\r\nHost: chaos\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{sweep}",
            sweep.len()
        )
        .expect("send");
        let mut tail = String::new();
        let n = BufReader::new(stream)
            .read_to_string(&mut tail)
            .unwrap_or(0);
        fp::clear_all();
        assert!(
            !tail.contains("\"done\":true"),
            "injected chunk failure must abort the sweep ({n} bytes): {tail}"
        );
        let (status, _, body) = http_lenient(addr, "POST", "/v1/predict", &predict_body(pairs[0]));
        assert_eq!(status, 200, "daemon must survive a sweep abort: {body}");

        // --- Scenario 4: overload soak ------------------------------
        // Stall the one worker long enough that the queue (cap 4)
        // saturates, then hit the daemon with a mixed burst. Every
        // client must get a bounded, named answer.
        fp::set("serve.queue.pop", &format!("delay:{}", STALL.as_millis()));
        let burst: Vec<(String, String)> = (0..10)
            .map(|i| match i % 4 {
                // Well-formed predicts: 200 (early, pre-stall), 503
                // (queue full / admission), or 504 (stalled batch).
                0 | 1 => (
                    "/v1/predict".to_string(),
                    predict_body(pairs[i % pairs.len()]),
                ),
                // Malformed JSON: always 400, never queued.
                2 => ("/v1/predict".to_string(), "{not json".to_string()),
                // Oversized body: always 413, never read.
                _ => ("/v1/predict".to_string(), "x".repeat(8000)),
            })
            .collect();
        let answers: Vec<(u16, Option<u64>)> = std::thread::scope(|cs| {
            let handles: Vec<_> = burst
                .iter()
                .map(|(path, body)| {
                    cs.spawn(move || {
                        let (status, retry_after, _) = http_lenient(addr, "POST", path, body);
                        (status, retry_after)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, &(status, retry_after)) in answers.iter().enumerate() {
            assert!(
                matches!(status, 200 | 400 | 408 | 413 | 503 | 504),
                "burst client {i} got unbounded/unnamed answer {status}"
            );
            if status == 503 {
                let ra = retry_after.unwrap_or(0);
                assert!(
                    (1..=30).contains(&ra),
                    "503 must carry a load-aware Retry-After, got {retry_after:?}"
                );
            }
        }
        // The burst of 10 against a queue of 4 with a stalled worker
        // must have shed at least one request with 503.
        assert!(
            answers.iter().any(|&(s, _)| s == 503),
            "no request was shed during the soak: {answers:?}"
        );
        // Named rejections for the hostile clients, not hangups.
        assert!(
            answers.iter().any(|&(s, _)| s == 400),
            "malformed bodies must answer 400: {answers:?}"
        );
        assert!(
            answers.iter().any(|&(s, _)| s == 413),
            "oversized bodies must answer 413: {answers:?}"
        );

        // Recovery: wait out the stall, clear the faults, and require
        // normal service plus self-consistent metrics.
        fp::clear_all();
        // A pop delay armed before the clear can still be in flight, so
        // give recovery a bounded grace window instead of one shot.
        let mut recovered = false;
        for _ in 0..20 {
            let (status, _, _) = http_lenient(addr, "POST", "/v1/predict", &predict_body(pairs[1]));
            if status == 200 {
                recovered = true;
                break;
            }
            std::thread::sleep(STALL / 4);
        }
        assert!(recovered, "daemon must recover after the soak");
        let shed =
            counter(addr, "rejected_queue_full_total") + counter(addr, "rejected_admission_total");
        assert!(shed >= 1, "shed counter must reflect the soak");
        let (status, _, body) = http_lenient(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        server.shutdown(addr);
    });
}
