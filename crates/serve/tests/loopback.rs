//! End-to-end loopback test of the serving daemon: a real
//! `TcpListener` on port 0, concurrent HTTP clients, and two
//! acceptance-criteria assertions —
//!
//! 1. concurrent singleton requests are *coalesced* by the dynamic
//!    batcher (observed batch occupancy > 1), and
//! 2. every served prediction is **bitwise-equal** to a direct
//!    `predict_link_batch`/`predict_reg_batch` call through an
//!    [`InferenceSession`] over the same model and graph.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::Ordering;
use std::sync::Barrier;
use std::time::Duration;

use circuit_graph::{CircuitGraph, EdgeType, GraphBuilder, NodeType};
use circuitgps::{AttnKind, CircuitGps, ModelConfig, MpnnKind};
use cirgps_serve::{ServeConfig, Server};
use subgraph_sample::SamplerConfig;

/// Two pin clusters bridged by a device chain — enough structure that
/// 1-hop enclosing subgraphs differ per pair.
fn toy_graph() -> (CircuitGraph, Vec<(u32, u32)>) {
    let mut b = GraphBuilder::new();
    let cluster = |b: &mut GraphBuilder, tag: &str| -> Vec<u32> {
        let hub = b.add_node(NodeType::Net, &format!("{tag}hub"));
        let mut out = vec![hub];
        for i in 0..6 {
            let p = b.add_node(NodeType::Pin, &format!("{tag}p{i}"));
            b.set_xc(p, 0, (i % 3) as f32);
            b.add_edge(hub, p, EdgeType::NetPin);
            out.push(p);
        }
        out
    };
    let c1 = cluster(&mut b, "a");
    let c2 = cluster(&mut b, "b");
    let mut prev = c1[0];
    for i in 0..4 {
        let mid = b.add_node(NodeType::Device, &format!("m{i}"));
        b.add_edge(prev, mid, EdgeType::DevicePin);
        prev = mid;
    }
    b.add_edge(prev, c2[0], EdgeType::DevicePin);
    let g = b.build();
    let pairs: Vec<(u32, u32)> = (1..6)
        .flat_map(|i| [(c1[i], c2[i]), (c1[i], c1[i + 1])])
        .collect();
    (g, pairs)
}

fn small_model() -> CircuitGps {
    CircuitGps::new(ModelConfig {
        hidden_dim: 16,
        pe_dim: 4,
        heads: 2,
        num_layers: 2,
        mpnn: MpnnKind::GatedGcn,
        attn: AttnKind::Transformer,
        ..Default::default()
    })
}

/// Minimal HTTP client: one request on its own connection, returns
/// (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    read_response(&mut reader)
}

/// Writes one request on an existing (keep-alive) stream.
fn send_request(stream: &mut TcpStream, method: &str, path: &str, body: &str) {
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: loopback\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
}

/// Reads one response off a buffered stream.
fn read_response(reader: &mut impl BufRead) -> (u16, String) {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, String::from_utf8(body).expect("utf-8 body"))
}

/// Sends one request and reads a `Transfer-Encoding: chunked` response,
/// returning (status, decoded body). Panics if the response is not
/// chunked — the sweep endpoint must stream.
fn http_chunked(addr: SocketAddr, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: loopback\r\nConnection: close\r\n\
         Content-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut chunked = false;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header");
        let line = line.trim_end().to_ascii_lowercase();
        if line.is_empty() {
            break;
        }
        if line == "transfer-encoding: chunked" {
            chunked = true;
        }
        if let Some(v) = line.strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content-length");
        }
    }
    if !chunked {
        // Error responses (400) come back fixed-length.
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).expect("body");
        return (status, String::from_utf8(body).expect("utf-8 body"));
    }
    let mut body = String::new();
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line).expect("chunk size");
        let size = usize::from_str_radix(size_line.trim(), 16)
            .unwrap_or_else(|_| panic!("bad chunk size {size_line:?}"));
        if size == 0 {
            let mut end = String::new();
            reader.read_line(&mut end).expect("final CRLF");
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk).expect("chunk data");
        body.push_str(std::str::from_utf8(&chunk).expect("utf-8 chunk"));
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf).expect("chunk CRLF");
        assert_eq!(&crlf, b"\r\n");
    }
    (status, body)
}

/// Pulls `"key":<number>` out of one JSONL line as raw text.
fn field<'a>(line: &'a str, key: &str) -> &'a str {
    let needle = format!("\"{key}\":");
    let start = line
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {line}"))
        + needle.len();
    let rest = &line[start..];
    let end = rest
        .find([',', '}'])
        .unwrap_or_else(|| panic!("unterminated {key:?} in {line}"));
    &rest[..end]
}

/// Extracts the numeric array labelled `key` from a response body and
/// parses each element *directly as `f32`* (never through `f64`), so
/// bitwise comparisons against engine outputs are meaningful.
fn parse_f32_array(body: &str, key: &str) -> Vec<f32> {
    let needle = format!("\"{key}\":[");
    let start = body
        .find(&needle)
        .unwrap_or_else(|| panic!("no {key:?} in {body}"))
        + needle.len();
    let end = start + body[start..].find(']').expect("closing bracket");
    body[start..end]
        .split(',')
        .filter(|s| !s.is_empty())
        .map(|s| s.parse::<f32>().expect("f32"))
        .collect()
}

#[test]
fn concurrent_singletons_coalesce_and_match_direct_predictions() {
    let (graph, pairs) = toy_graph();
    let model = small_model();
    let cfg = ServeConfig {
        max_batch: 4,
        // Generous window so slow CI threads still land in one batch.
        max_wait: Duration::from_millis(300),
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 64,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 64,
        },
        read_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::new(model, graph, "TOY".into(), cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    // Direct references through the same entry points the daemon uses.
    let mut session = server.session();
    let want_links = session.predict_links(&pairs);
    let want_caps = session.predict_couplings(&pairs[..4]);
    let want_ground = session.predict_ground(&[pairs[0].0, pairs[1].0]);

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // Phase 1: one singleton request per client thread, all released
        // together — the dynamic batcher must coalesce them.
        let barrier = Barrier::new(pairs.len());
        let got: Vec<(usize, f32)> = std::thread::scope(|cs| {
            let handles: Vec<_> = pairs
                .iter()
                .enumerate()
                .map(|(i, &(a, b))| {
                    let barrier = &barrier;
                    cs.spawn(move || {
                        barrier.wait();
                        let (status, body) = http(
                            addr,
                            "POST",
                            "/v1/predict",
                            &format!("{{\"task\":\"link\",\"pairs\":[[{a},{b}]]}}"),
                        );
                        assert_eq!(status, 200, "{body}");
                        (i, parse_f32_array(&body, "probs")[0])
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, prob) in got {
            assert_eq!(
                prob.to_bits(),
                want_links[i].to_bits(),
                "pair {i}: served {prob} != direct {}",
                want_links[i]
            );
        }
        let max_occupancy = server
            .engine()
            .metrics()
            .batch_occupancy_max
            .load(Ordering::Relaxed);
        assert!(
            max_occupancy > 1,
            "dynamic batcher never coalesced concurrent singletons \
             (max occupancy {max_occupancy})"
        );

        // Phase 2: multi-query cap and ground requests round-trip
        // bitwise too.
        let pair_list = pairs[..4]
            .iter()
            .map(|&(a, b)| format!("[{a},{b}]"))
            .collect::<Vec<_>>()
            .join(",");
        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!("{{\"task\":\"cap\",\"pairs\":[{pair_list}]}}"),
        );
        assert_eq!(status, 200, "{body}");
        let caps = parse_f32_array(&body, "caps_norm");
        assert_eq!(caps.len(), want_caps.len());
        for (got, want) in caps.iter().zip(&want_caps) {
            assert_eq!(got.to_bits(), want.to_bits(), "cap {got} != {want}");
        }

        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!(
                "{{\"task\":\"ground\",\"nodes\":[{},{}]}}",
                pairs[0].0, pairs[1].0
            ),
        );
        assert_eq!(status, 200, "{body}");
        let ground = parse_f32_array(&body, "caps_norm");
        for (got, want) in ground.iter().zip(&want_ground) {
            assert_eq!(got.to_bits(), want.to_bits(), "ground {got} != {want}");
        }

        // Health and metrics endpoints.
        let (status, body) = http(addr, "GET", "/healthz", "");
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"design\":\"TOY\""), "{body}");
        let (status, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(body.contains("cirgps_serve_batches_total"), "{body}");
        assert!(body.contains("cirgps_serve_batch_occupancy_sum"), "{body}");
        // The backend every bitwise comparison above ran under is pinned
        // and visible: /metrics must report exactly the active dispatch
        // backend and the f32 weight precision of this deployment.
        assert!(
            body.contains(&format!(
                "cirgps_serve_backend_info{{backend=\"{}\",precision=\"f32\"}} 1",
                circuitgps::Backend::active().name()
            )),
            "{body}"
        );

        server.shutdown(addr);
    });
}

/// int8 serving holds the same parity bar as f32: responses are
/// bitwise-equal to a direct session over the same quantized model, and
/// the precision is reported on `/metrics`.
#[test]
fn quantized_model_serves_bitwise_and_reports_int8() {
    let (graph, pairs) = toy_graph();
    let mut model = small_model();
    assert!(
        model.store_mut().quantize_int8() > 0,
        "quantization must cover at least one weight tensor"
    );
    let cfg = ServeConfig {
        max_batch: 4,
        max_wait: Duration::from_millis(50),
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 64,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 64,
        },
        read_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(2),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::new(model, graph, "TOY".into(), cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut session = server.session();
    let want = session.predict_links(&pairs);

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));
        let pair_list = pairs
            .iter()
            .map(|&(a, b)| format!("[{a},{b}]"))
            .collect::<Vec<_>>()
            .join(",");
        let (status, body) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!("{{\"task\":\"link\",\"pairs\":[{pair_list}]}}"),
        );
        assert_eq!(status, 200, "{body}");
        let probs = parse_f32_array(&body, "probs");
        assert_eq!(probs.len(), want.len());
        for (i, (got, want)) in probs.iter().zip(&want).enumerate() {
            assert_eq!(
                got.to_bits(),
                want.to_bits(),
                "pair {i}: served {got} != direct {want}"
            );
        }

        let (status, body) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(
            body.contains(&format!(
                "cirgps_serve_backend_info{{backend=\"{}\",precision=\"int8\"}} 1",
                circuitgps::Backend::active().name()
            )),
            "{body}"
        );

        server.shutdown(addr);
    });
}

#[test]
fn graceful_drain_answers_in_flight_bitwise_and_refuses_new_connections() {
    let (graph, pairs) = toy_graph();
    let model = small_model();
    let cfg = ServeConfig {
        max_batch: 8,
        // Long batching window: the in-flight singletons below are still
        // parked in the batcher when the drain begins.
        max_wait: Duration::from_millis(400),
        workers: 1,
        queue_capacity: 64,
        cache_capacity: 64,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 64,
        },
        read_timeout: Duration::from_secs(5),
        drain_timeout: Duration::from_secs(5),
        request_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let server = Server::new(model, graph, "TOY".into(), cfg);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut session = server.session();
    let want = session.predict_links(&pairs[..3]);

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // A keep-alive connection opened before the drain, to observe
        // /healthz flip to "draining" from inside it.
        let mut ka = TcpStream::connect(addr).expect("keep-alive connect");
        ka.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut ka_reader = BufReader::new(ka.try_clone().expect("clone"));
        send_request(&mut ka, "GET", "/healthz", "");
        let (status, body) = read_response(&mut ka_reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");

        // Three in-flight singleton predicts, parked in the 400 ms
        // batch window when the drain begins.
        let in_flight: Vec<_> = pairs[..3]
            .iter()
            .enumerate()
            .map(|(i, &(a, b))| {
                s.spawn(move || {
                    let (status, body) = http(
                        addr,
                        "POST",
                        "/v1/predict",
                        &format!("{{\"task\":\"link\",\"pairs\":[[{a},{b}]]}}"),
                    );
                    (i, status, body)
                })
            })
            .collect();
        std::thread::sleep(Duration::from_millis(120));
        server.begin_drain(addr);

        // The pre-drain keep-alive connection is still answered — and
        // sees the draining status.
        send_request(&mut ka, "GET", "/healthz", "");
        let (status, body) = read_response(&mut ka_reader);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"draining\""), "{body}");

        // New connections are refused once the listener closes (the
        // drain poke needs a moment to wake the accept loop, so poll).
        let t0 = std::time::Instant::now();
        while TcpStream::connect(addr).is_ok() {
            assert!(
                t0.elapsed() < Duration::from_secs(2),
                "listener still accepting 2 s into the drain"
            );
            std::thread::sleep(Duration::from_millis(10));
        }

        // Every request in flight before the drain is answered,
        // bitwise-identical to a direct session call.
        for h in in_flight {
            let (i, status, body) = h.join().unwrap();
            assert_eq!(status, 200, "{body}");
            let got = parse_f32_array(&body, "probs")[0];
            assert_eq!(
                got.to_bits(),
                want[i].to_bits(),
                "pair {i}: drained answer {got} != direct {}",
                want[i]
            );
        }
    });
    assert!(server.is_draining());
    assert!(
        TcpStream::connect(addr).is_err(),
        "listener must stay closed after the drain completes"
    );
}

#[test]
fn sweep_endpoint_streams_chunked_jsonl_bitwise_equal_to_predict() {
    let (graph, pairs) = toy_graph();
    let model = small_model();
    let server = Server::new(
        model,
        graph,
        "TOY".into(),
        ServeConfig {
            max_wait: Duration::ZERO,
            workers: 1,
            read_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let mut session = server.session();
    let want_links = session.predict_links(&pairs);
    let want_caps = session.predict_couplings(&pairs);

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // Explicit pairs, link task, tiny chunk so the response spans
        // several windows.
        let pair_list = pairs
            .iter()
            .map(|&(a, b)| format!("[{a},{b}]"))
            .collect::<Vec<_>>()
            .join(",");
        let (status, body) = http_chunked(
            addr,
            "/v1/sweep",
            &format!("{{\"task\":\"link\",\"pairs\":[{pair_list}],\"chunk\":3}}"),
        );
        assert_eq!(status, 200, "{body}");
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), pairs.len() + 1, "{body}");
        let trailer = lines[lines.len() - 1];
        assert!(trailer.contains("\"done\":true"), "{trailer}");
        assert_eq!(field(trailer, "pairs"), format!("{}", pairs.len()));
        assert_eq!(
            field(trailer, "chunks"),
            format!("{}", pairs.len().div_ceil(3))
        );
        for (i, line) in lines[..pairs.len()].iter().enumerate() {
            let a: u32 = field(line, "a").parse().unwrap();
            let b: u32 = field(line, "b").parse().unwrap();
            assert_eq!((a, b), pairs[i], "order must match input: {line}");
            let prob: f32 = field(line, "prob").parse().unwrap();
            assert_eq!(
                prob.to_bits(),
                want_links[i].to_bits(),
                "pair {i}: swept {prob} != predict {}",
                want_links[i]
            );
        }

        // Cap task shares the same parity contract.
        let (status, body) = http_chunked(
            addr,
            "/v1/sweep",
            &format!("{{\"task\":\"cap\",\"pairs\":[{pair_list}]}}"),
        );
        assert_eq!(status, 200, "{body}");
        for (i, line) in body.lines().take(pairs.len()).enumerate() {
            let cap: f32 = field(line, "cap_norm").parse().unwrap();
            assert_eq!(cap.to_bits(), want_caps[i].to_bits(), "{line}");
        }

        // Planner-enumerated candidates: every emitted pair must again
        // match a direct prediction bitwise.
        let (status, body) = http_chunked(
            addr,
            "/v1/sweep",
            "{\"task\":\"link\",\"enumerate\":{\"per_node_cap\":4}}",
        );
        assert_eq!(status, 200, "{body}");
        let lines: Vec<&str> = body.lines().collect();
        let trailer = lines[lines.len() - 1];
        assert!(trailer.contains("\"done\":true"), "{trailer}");
        let n_enum: usize = field(trailer, "pairs").parse().unwrap();
        assert!(n_enum > 0, "enumeration found no candidates: {trailer}");
        assert_eq!(lines.len(), n_enum + 1);
        let enum_pairs: Vec<(u32, u32)> = lines[..n_enum]
            .iter()
            .map(|l| {
                (
                    field(l, "a").parse().unwrap(),
                    field(l, "b").parse().unwrap(),
                )
            })
            .collect();
        let want_enum = session.predict_links(&enum_pairs);
        for (i, line) in lines[..n_enum].iter().enumerate() {
            let prob: f32 = field(line, "prob").parse().unwrap();
            assert_eq!(prob.to_bits(), want_enum[i].to_bits(), "{line}");
        }

        // Malformed sweeps get a clean fixed-length 400.
        for (body, expect) in [
            ("{\"task\":\"link\"}", "missing \\\"pairs\\\""),
            ("{\"task\":\"cap\",\"pairs\":[],\"chunk\":0}", "chunk"),
            ("{\"task\":\"frob\",\"pairs\":[[0,1]]}", "unknown task"),
            (
                "{\"task\":\"link\",\"pairs\":[[0,1]],\"enumerate\":{}}",
                "not both",
            ),
            ("{\"task\":\"link\",\"pairs\":[[2,2]]}", "identical"),
            ("{\"task\":\"link\",\"pairs\":[]}", "empty pair list"),
        ] {
            let (status, resp) = http_chunked(addr, "/v1/sweep", body);
            assert_eq!(status, 400, "{body} -> {resp}");
            assert!(resp.contains(expect), "{body} -> {resp}");
        }

        // Sweep counters are exported.
        let (status, metrics) = http(addr, "GET", "/metrics", "");
        assert_eq!(status, 200);
        assert!(
            metrics.contains("cirgps_serve_requests_sweep_total 3"),
            "{metrics}"
        );
        let swept: u64 = metrics
            .lines()
            .find_map(|l| l.strip_prefix("cirgps_serve_sweep_pairs_total "))
            .expect("sweep_pairs_total row")
            .parse()
            .unwrap();
        assert_eq!(swept as usize, 2 * pairs.len() + n_enum, "{metrics}");
        assert!(
            metrics.contains("cirgps_serve_sweep_forwards_total"),
            "{metrics}"
        );

        server.shutdown(addr);
    });
}

#[test]
fn protocol_errors_are_reported_not_fatal() {
    let (graph, pairs) = toy_graph();
    let nodes = graph.num_nodes() as u32;
    let server = Server::new(
        small_model(),
        graph,
        "TOY".into(),
        ServeConfig {
            max_wait: Duration::ZERO,
            workers: 1,
            read_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        for (body, expect) in [
            ("not json", "bad JSON"),
            ("{\"task\":\"frob\"}", "unknown task"),
            ("{\"task\":\"link\"}", "missing \\\"pairs\\\""),
            (
                "{\"task\":\"link\",\"pairs\":[[1,1]]}",
                "identical endpoints",
            ),
            ("{\"task\":\"link\",\"pairs\":[]}", "empty query list"),
            ("{\"task\":\"ground\",\"nodes\":[-3]}", "not a non-negative"),
        ] {
            let (status, resp) = http(addr, "POST", "/v1/predict", body);
            assert_eq!(status, 400, "{body} -> {resp}");
            assert!(resp.contains(expect), "{body} -> {resp}");
        }
        let (status, resp) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!("{{\"task\":\"ground\",\"nodes\":[{nodes}]}}"),
        );
        assert_eq!(status, 400, "{resp}");
        assert!(resp.contains("out of range"), "{resp}");

        let (status, _) = http(addr, "GET", "/nope", "");
        assert_eq!(status, 404);
        let (status, _) = http(addr, "DELETE", "/healthz", "");
        assert_eq!(status, 405);

        // The daemon is still healthy after every rejected request.
        let (status, resp) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!(
                "{{\"task\":\"link\",\"pairs\":[[{},{}]]}}",
                pairs[0].0, pairs[0].1
            ),
        );
        assert_eq!(status, 200, "{resp}");
        assert!(resp.contains("\"count\":1"), "{resp}");

        server.shutdown(addr);
    });
}

/// Fetches one counter row from `/metrics`.
fn metric(addr: SocketAddr, name: &str) -> u64 {
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    body.lines()
        .find_map(|l| l.strip_prefix(&format!("cirgps_serve_{name} ")))
        .unwrap_or_else(|| panic!("no {name} row in {body}"))
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {name}"))
}

/// Ingress hardening, observed from outside: an oversized body is
/// refused with 413 before it is read, an idle keep-alive connection is
/// closed (not leaked), and a client vanishing mid-sweep neither wedges
/// nor poisons the daemon. Each rejection ticks its metric.
#[test]
fn hostile_ingress_is_bounded_and_the_daemon_survives() {
    let (graph, pairs) = toy_graph();
    let server = Server::new(
        small_model(),
        graph,
        "TOY".into(),
        ServeConfig {
            max_wait: Duration::ZERO,
            workers: 1,
            read_timeout: Duration::from_secs(5),
            max_body_bytes: 1024,
            idle_timeout: Duration::from_millis(300),
            ingress_timeout: Duration::from_secs(2),
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // Oversized body: the Content-Length alone earns a 413 — the
        // server must not wait for (or buffer) the advertised megabytes.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write!(
                stream,
                "POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 10000000\r\n\r\n"
            )
            .expect("send");
            let mut reader = BufReader::new(stream);
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 413, "{body}");
            assert!(body.contains("exceeds the 1024 byte limit"), "{body}");
            // 413 closes the connection: the next read sees EOF.
            let mut probe = String::new();
            assert_eq!(reader.read_line(&mut probe).unwrap(), 0);
        }
        assert_eq!(metric(addr, "requests_too_large_total"), 1);

        // Too many header lines is a 400, not an unbounded Vec.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let headers: String = (0..100).map(|i| format!("X-{i}: y\r\n")).collect();
            write!(
                stream,
                "GET /healthz HTTP/1.1\r\n{headers}Content-Length: 0\r\n\r\n"
            )
            .expect("send");
            let mut reader = BufReader::new(stream);
            let (status, body) = read_response(&mut reader);
            assert_eq!(status, 400, "{body}");
            assert!(body.contains("more than"), "{body}");
        }

        // Idle keep-alive connection: closed by the server after the
        // idle deadline, and counted.
        {
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            let mut probe = [0u8; 1];
            // The server should close us without a byte in response.
            assert_eq!(stream.read(&mut probe).expect("clean EOF"), 0);
        }
        assert!(metric(addr, "connections_idle_closed_total") >= 1);

        // Client vanishing mid-sweep: read one chunk, then drop the
        // connection. The sweep thread must unwind without wedging.
        {
            let pair_list = pairs
                .iter()
                .map(|&(a, b)| format!("[{a},{b}]"))
                .collect::<Vec<_>>()
                .join(",");
            let body = format!("{{\"task\":\"link\",\"pairs\":[{pair_list}],\"chunk\":1}}");
            let mut stream = TcpStream::connect(addr).expect("connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(5)))
                .unwrap();
            write!(
                stream,
                "POST /v1/sweep HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            )
            .expect("send");
            let mut reader = BufReader::new(stream);
            let mut status_line = String::new();
            reader.read_line(&mut status_line).expect("status");
            assert!(status_line.contains("200"), "{status_line}");
            // Drop with the rest of the stream unread.
        }

        // The daemon is still fully healthy after all of the above.
        let (status, resp) = http(
            addr,
            "POST",
            "/v1/predict",
            &format!(
                "{{\"task\":\"link\",\"pairs\":[[{},{}]]}}",
                pairs[0].0, pairs[0].1
            ),
        );
        assert_eq!(status, 200, "{resp}");
        assert!(resp.contains("\"count\":1"), "{resp}");

        server.shutdown(addr);
    });
}

/// The accept-level connection cap sheds with a 503 whose `Retry-After`
/// is the load-aware estimate (≥ 1 s), and frees up once the hogging
/// connection closes.
#[test]
fn connection_cap_sheds_with_load_aware_retry_after() {
    let (graph, _pairs) = toy_graph();
    let server = Server::new(
        small_model(),
        graph,
        "TOY".into(),
        ServeConfig {
            max_wait: Duration::ZERO,
            workers: 1,
            read_timeout: Duration::from_secs(5),
            max_connections: 1,
            ..ServeConfig::default()
        },
    );
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    std::thread::scope(|s| {
        s.spawn(|| server.serve(listener));

        // Connection 1 takes the only slot and keeps it (keep-alive).
        let mut hog = TcpStream::connect(addr).expect("connect");
        hog.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        send_request(&mut hog, "GET", "/healthz", "");
        let mut hog_reader = BufReader::new(hog.try_clone().unwrap());
        let (status, _) = read_response(&mut hog_reader);
        assert_eq!(status, 200);

        // Connection 2 is shed at accept time with a parseable
        // Retry-After.
        let shed = TcpStream::connect(addr).expect("connect");
        shed.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let mut reader = BufReader::new(shed.try_clone().unwrap());
        let mut status_line = String::new();
        reader.read_line(&mut status_line).expect("status");
        assert!(status_line.contains("503"), "{status_line}");
        let mut retry_after: Option<u64> = None;
        loop {
            let mut line = String::new();
            if reader.read_line(&mut line).unwrap_or(0) == 0 {
                break;
            }
            let line = line.trim_end().to_ascii_lowercase();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line.strip_prefix("retry-after:") {
                retry_after = v.trim().parse().ok();
            }
        }
        let retry_after = retry_after.expect("shed 503 must carry Retry-After");
        assert!((1..=30).contains(&retry_after), "{retry_after}");
        drop(reader);
        drop(shed);

        // Freeing the slot lets the next connection through.
        drop(hog_reader);
        drop(hog);
        for attempt in 0.. {
            let (status, _) = http(addr, "GET", "/healthz", "");
            if status == 200 {
                break;
            }
            assert!(attempt < 50, "slot never freed");
            std::thread::sleep(Duration::from_millis(20));
        }
        assert!(metric(addr, "rejected_max_conns_total") >= 1);

        server.shutdown(addr);
    });
}
