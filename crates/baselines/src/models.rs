//! The two baselines of Tables V/VI/VIII.
//!
//! **ParaGraph** (Ren et al., DAC 2020) — heterogeneous MPNN over the full
//! schematic graph with an *ensemble* of three magnitude sub-models whose
//! outputs are blended by a learned gate.
//!
//! **DLPL-Cap** (Shen et al., GLSVLSI 2024) — a GNN *router* that
//! classifies each target into one of five capacitance-magnitude classes,
//! followed by five expert regressors; the paper notes this data-sensitive
//! routing limits cross-design generalization.
//!
//! Both are adapted to the coupling task exactly as the paper describes:
//! full-graph input, circuit statistics `XC` as features, no subgraph
//! sampling, no positional encoding. Pair scores are computed from the
//! Hadamard product of endpoint embeddings.

use std::sync::Arc;

use cirgps_nn::{Activation, Linear, Mlp, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::sage::{FullGraphInputs, SageLayer, INPUT_DIM};

/// Number of ensemble sub-models in ParaGraph.
pub const PARAGRAPH_ENSEMBLE: usize = 3;
/// Number of expert regressors in DLPL-Cap.
pub const DLPL_EXPERTS: usize = 5;

/// Which baseline architecture to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineKind {
    /// ParaGraph [18].
    ParaGraph,
    /// DLPL-Cap [19].
    DlplCap,
}

impl BaselineKind {
    /// Display name used in the tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            BaselineKind::ParaGraph => "ParaGraph",
            BaselineKind::DlplCap => "DLPL-Cap",
        }
    }
}

/// Hyperparameters shared by both baselines.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Hidden width.
    pub hidden_dim: usize,
    /// Message-passing depth.
    pub num_layers: usize,
    /// Parameter-init seed.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            hidden_dim: 16,
            num_layers: 3,
            seed: 0xBA5E,
        }
    }
}

/// A baseline model instance.
#[derive(Debug)]
pub struct Baseline {
    /// Which architecture this is.
    pub kind: BaselineKind,
    /// Configuration.
    pub cfg: BaselineConfig,
    store: ParamStore,
    layers: Vec<SageLayer>,
    /// Pair scorer for link prediction: MLP over h_m ⊙ h_n.
    link_mlp: Mlp,
    /// Gate / router over experts (pair or node embedding → expert logits).
    gate: Linear,
    /// Expert regression heads.
    experts: Vec<Mlp>,
}

impl Baseline {
    /// Builds a baseline with fresh parameters.
    pub fn new(kind: BaselineKind, cfg: BaselineConfig) -> Baseline {
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let d = cfg.hidden_dim;
        let mut layers = Vec::new();
        for l in 0..cfg.num_layers {
            let in_dim = if l == 0 { INPUT_DIM } else { d };
            layers.push(SageLayer::new(
                &mut store,
                &format!("sage.{l}"),
                in_dim,
                d,
                &mut rng,
            ));
        }
        let n_experts = match kind {
            BaselineKind::ParaGraph => PARAGRAPH_ENSEMBLE,
            BaselineKind::DlplCap => DLPL_EXPERTS,
        };
        let link_mlp = Mlp::new(
            &mut store,
            "link",
            &[d, d, 1],
            Activation::Relu,
            0.0,
            &mut rng,
        );
        let gate = Linear::new(&mut store, "gate", d, n_experts, true, &mut rng);
        let experts = (0..n_experts)
            .map(|e| {
                Mlp::new(
                    &mut store,
                    &format!("expert.{e}"),
                    &[d, d, 1],
                    Activation::Relu,
                    0.0,
                    &mut rng,
                )
            })
            .collect();
        Baseline {
            kind,
            cfg,
            store,
            layers,
            link_mlp,
            gate,
            experts,
        }
    }

    /// The parameter store.
    pub fn store(&self) -> &ParamStore {
        &self.store
    }

    /// Mutable store for the optimizer.
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.store
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.store.num_trainable()
    }

    /// Full-graph node embeddings (`N × d`).
    pub fn node_embeddings(&self, tape: &mut Tape, g: &FullGraphInputs) -> Var {
        let mut h = tape.input(g.features.clone());
        for layer in &self.layers {
            h = layer.forward(tape, h, g);
        }
        h
    }

    /// Pair embeddings for target links: `h_m ⊙ h_n` (`P × d`).
    pub fn pair_embeddings(&self, tape: &mut Tape, h: Var, pairs: &[(u32, u32)]) -> Var {
        let ms: Vec<usize> = pairs.iter().map(|&(m, _)| m as usize).collect();
        let ns: Vec<usize> = pairs.iter().map(|&(_, n)| n as usize).collect();
        let hm = tape.gather(h, Arc::new(ms));
        let hn = tape.gather(h, Arc::new(ns));
        tape.mul(hm, hn)
    }

    /// Link-existence logits for target pairs (`P × 1`).
    pub fn link_logits(&self, tape: &mut Tape, g: &FullGraphInputs, pairs: &[(u32, u32)]) -> Var {
        let h = self.node_embeddings(tape, g);
        let pe = self.pair_embeddings(tape, h, pairs);
        self.link_mlp.forward(tape, pe)
    }

    /// Regression outputs in `[0, 1]` from an embedding matrix (`P × d`):
    /// gated mixture of experts (soft routing keeps DLPL-Cap's
    /// classify-then-regress scheme differentiable end to end).
    pub fn expert_outputs(&self, tape: &mut Tape, emb: Var) -> Var {
        let gate_logits = self.gate.forward(tape, emb);
        let weights = tape.softmax_rows(gate_logits); // P × E
        let mut total: Option<Var> = None;
        for (e, expert) in self.experts.iter().enumerate() {
            let pred = expert.forward(tape, emb); // P × 1
            let w = tape.col_slice(weights, e, 1); // P × 1
            let contrib = tape.mul(pred, w);
            total = Some(match total {
                Some(t) => tape.add(t, contrib),
                None => contrib,
            });
        }
        let out = total.expect("at least one expert");
        tape.sigmoid(out)
    }

    /// Edge-regression predictions for pairs (`P × 1`, in `[0, 1]`).
    pub fn reg_outputs(&self, tape: &mut Tape, g: &FullGraphInputs, pairs: &[(u32, u32)]) -> Var {
        let h = self.node_embeddings(tape, g);
        let pe = self.pair_embeddings(tape, h, pairs);
        self.expert_outputs(tape, pe)
    }

    /// Node-regression predictions for nodes (`P × 1`, in `[0, 1]`).
    pub fn node_reg_outputs(&self, tape: &mut Tape, g: &FullGraphInputs, nodes: &[u32]) -> Var {
        let h = self.node_embeddings(tape, g);
        let idx: Vec<usize> = nodes.iter().map(|&v| v as usize).collect();
        let emb = tape.gather(h, Arc::new(idx));
        self.expert_outputs(tape, emb)
    }

    /// Router-assignment auxiliary loss for DLPL-Cap: cross-entropy of the
    /// gate against magnitude-bin labels. ParaGraph trains its gate end to
    /// end only.
    pub fn router_loss(&self, tape: &mut Tape, emb: Var, bins: &[usize]) -> Var {
        let gate_logits = self.gate.forward(tape, emb);
        tape.cross_entropy(gate_logits, bins)
    }

    /// The magnitude bin of a normalized target for router supervision.
    pub fn magnitude_bin(&self, target: f32) -> usize {
        let n = self.experts.len();
        ((target * n as f32) as usize).min(n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::XcNormalizer;

    fn inputs() -> FullGraphInputs {
        let mut b = GraphBuilder::new();
        let mut prev = b.add_node(NodeType::Net, "n0");
        for i in 1..8 {
            let v = b.add_node(
                if i % 2 == 0 {
                    NodeType::Net
                } else {
                    NodeType::Pin
                },
                &format!("v{i}"),
            );
            b.add_edge(prev, v, EdgeType::NetPin);
            prev = v;
        }
        let g = b.build();
        let xcn = XcNormalizer::fit(&[&g]);
        FullGraphInputs::new(&g, &xcn)
    }

    #[test]
    fn paragraph_shapes() {
        let g = inputs();
        let m = Baseline::new(BaselineKind::ParaGraph, BaselineConfig::default());
        let mut tape = Tape::new(m.store(), false, 0);
        let logits = m.link_logits(&mut tape, &g, &[(0, 3), (1, 5)]);
        assert_eq!(tape.shape(logits), (2, 1));
        let mut tape2 = Tape::new(m.store(), false, 0);
        let regs = m.reg_outputs(&mut tape2, &g, &[(0, 3)]);
        let v = tape2.value(regs).item();
        assert!((0.0..=1.0).contains(&v));
    }

    #[test]
    fn dlpl_has_five_experts_and_router() {
        let g = inputs();
        let m = Baseline::new(BaselineKind::DlplCap, BaselineConfig::default());
        assert_eq!(m.experts.len(), DLPL_EXPERTS);
        assert_eq!(m.magnitude_bin(0.0), 0);
        assert_eq!(m.magnitude_bin(0.99), 4);
        let mut tape = Tape::new(m.store(), true, 0);
        let h = m.node_embeddings(&mut tape, &g);
        let emb = m.pair_embeddings(&mut tape, h, &[(0, 2), (3, 5)]);
        let loss = m.router_loss(&mut tape, emb, &[0, 4]);
        assert!(tape.value(loss).item() > 0.0);
    }

    #[test]
    fn node_regression_path() {
        let g = inputs();
        let m = Baseline::new(BaselineKind::DlplCap, BaselineConfig::default());
        let mut tape = Tape::new(m.store(), false, 0);
        let out = m.node_reg_outputs(&mut tape, &g, &[1, 4, 6]);
        assert_eq!(tape.shape(out), (3, 1));
    }

    #[test]
    fn param_counts_differ_by_expert_count() {
        let p = Baseline::new(BaselineKind::ParaGraph, BaselineConfig::default());
        let d = Baseline::new(BaselineKind::DlplCap, BaselineConfig::default());
        assert!(d.num_params() > p.num_params());
    }
}
