//! Full-batch training and evaluation for the baselines.
//!
//! The baselines train on entire circuit graphs (one gradient step per
//! design per epoch), exactly the adaptation the paper describes — no
//! subgraph sampling means every step pays the full-graph forward cost,
//! which is also why these models cannot exploit the paper's few-shot
//! pre-training.

use circuitgps::{link_metrics, reg_metrics, LinkMetrics, RegMetrics};
use cirgps_nn::{Adam, GradStore, Tape};
use subgraph_sample::Link;

use crate::models::{Baseline, BaselineKind};
use crate::sage::FullGraphInputs;

/// Target pairs (or nodes) with labels for one design.
#[derive(Debug, Clone, Default)]
pub struct PairTask {
    /// Endpoint node ids.
    pub pairs: Vec<(u32, u32)>,
    /// Binary existence labels.
    pub labels: Vec<f32>,
    /// Normalized capacitance targets in `[0, 1]`.
    pub targets: Vec<f32>,
}

impl PairTask {
    /// Builds a pair task from balanced links with a capacitance encoder.
    pub fn from_links(links: &[Link], encode: impl Fn(f64) -> f32) -> PairTask {
        PairTask {
            pairs: links.iter().map(|l| (l.a, l.b)).collect(),
            labels: links.iter().map(|l| l.label).collect(),
            targets: links.iter().map(|l| encode(l.cap)).collect(),
        }
    }

    /// Number of targets.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Whether there are no targets.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// Node-level targets for one design.
#[derive(Debug, Clone, Default)]
pub struct NodeTask {
    /// Target node ids.
    pub nodes: Vec<u32>,
    /// Normalized ground-capacitance targets.
    pub targets: Vec<f32>,
}

/// Baseline training hyperparameters.
#[derive(Debug, Clone)]
pub struct BaselineTrainConfig {
    /// Full-batch epochs (per design).
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Gradient clip.
    pub clip: f32,
    /// Router auxiliary-loss weight (DLPL-Cap only).
    pub router_weight: f32,
}

impl Default for BaselineTrainConfig {
    fn default() -> Self {
        BaselineTrainConfig {
            epochs: 60,
            lr: 5e-3,
            clip: 1.0,
            router_weight: 0.3,
        }
    }
}

/// Trains link prediction over one or more training designs.
///
/// Returns the final mean loss.
pub fn train_link(
    model: &mut Baseline,
    designs: &[(&FullGraphInputs, &PairTask)],
    cfg: &BaselineTrainConfig,
) -> f32 {
    let mut opt = Adam::new(cfg.lr);
    let mut last = f32::NAN;
    for _ in 0..cfg.epochs {
        let mut total = 0.0f32;
        for &(g, task) in designs {
            if task.is_empty() {
                continue;
            }
            let mut grads = GradStore::new(model.store());
            {
                // Inner scope: the tape borrows the store and recycles its
                // buffers on drop, so it must die before the optimizer step.
                let mut tape = Tape::new(model.store(), true, 0);
                let logits = model.link_logits(&mut tape, g, &task.pairs);
                let loss = tape.bce_with_logits(logits, &task.labels);
                tape.backward(loss, &mut grads);
                total += tape.value(loss).item();
            }
            grads.clip_global_norm(cfg.clip);
            opt.step(model.store_mut(), &grads);
        }
        last = total / designs.len().max(1) as f32;
    }
    last
}

/// Trains edge regression (with DLPL-Cap's router supervision).
pub fn train_regression(
    model: &mut Baseline,
    designs: &[(&FullGraphInputs, &PairTask)],
    cfg: &BaselineTrainConfig,
) -> f32 {
    let mut opt = Adam::new(cfg.lr);
    let mut last = f32::NAN;
    for _ in 0..cfg.epochs {
        let mut total = 0.0f32;
        for &(g, task) in designs {
            if task.is_empty() {
                continue;
            }
            let mut grads = GradStore::new(model.store());
            {
                let mut tape = Tape::new(model.store(), true, 0);
                let h = model.node_embeddings(&mut tape, g);
                let emb = model.pair_embeddings(&mut tape, h, &task.pairs);
                let outs = model.expert_outputs(&mut tape, emb);
                let mut loss = tape.l1_loss(outs, &task.targets);
                if model.kind == BaselineKind::DlplCap && cfg.router_weight > 0.0 {
                    let bins: Vec<usize> = task
                        .targets
                        .iter()
                        .map(|&t| model.magnitude_bin(t))
                        .collect();
                    let aux = model.router_loss(&mut tape, emb, &bins);
                    let aux = tape.scale(aux, cfg.router_weight);
                    loss = tape.add(loss, aux);
                }
                tape.backward(loss, &mut grads);
                total += tape.value(loss).item();
            }
            grads.clip_global_norm(cfg.clip);
            opt.step(model.store_mut(), &grads);
        }
        last = total / designs.len().max(1) as f32;
    }
    last
}

/// Trains node-level ground-capacitance regression.
pub fn train_node_regression(
    model: &mut Baseline,
    designs: &[(&FullGraphInputs, &NodeTask)],
    cfg: &BaselineTrainConfig,
) -> f32 {
    let mut opt = Adam::new(cfg.lr);
    let mut last = f32::NAN;
    for _ in 0..cfg.epochs {
        let mut total = 0.0f32;
        for &(g, task) in designs {
            if task.nodes.is_empty() {
                continue;
            }
            let mut grads = GradStore::new(model.store());
            {
                let mut tape = Tape::new(model.store(), true, 0);
                let outs = model.node_reg_outputs(&mut tape, g, &task.nodes);
                let loss = tape.l1_loss(outs, &task.targets);
                tape.backward(loss, &mut grads);
                total += tape.value(loss).item();
            }
            grads.clip_global_norm(cfg.clip);
            opt.step(model.store_mut(), &grads);
        }
        last = total / designs.len().max(1) as f32;
    }
    last
}

/// Zero-shot link evaluation on a test design.
pub fn evaluate_link(model: &Baseline, g: &FullGraphInputs, task: &PairTask) -> LinkMetrics {
    let mut tape = Tape::new(model.store(), false, 0);
    let logits = model.link_logits(&mut tape, g, &task.pairs);
    let scores: Vec<f32> = tape
        .value(logits)
        .as_slice()
        .iter()
        .map(|&z| 1.0 / (1.0 + (-z).exp()))
        .collect();
    link_metrics(&scores, &task.labels)
}

/// Zero-shot edge-regression evaluation.
pub fn evaluate_regression(model: &Baseline, g: &FullGraphInputs, task: &PairTask) -> RegMetrics {
    let mut tape = Tape::new(model.store(), false, 0);
    let outs = model.reg_outputs(&mut tape, g, &task.pairs);
    reg_metrics(tape.value(outs).as_slice(), &task.targets)
}

/// Zero-shot node-regression evaluation.
pub fn evaluate_node_regression(
    model: &Baseline,
    g: &FullGraphInputs,
    task: &NodeTask,
) -> RegMetrics {
    let mut tape = Tape::new(model.store(), false, 0);
    let outs = model.node_reg_outputs(&mut tape, g, &task.nodes);
    reg_metrics(tape.value(outs).as_slice(), &task.targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::BaselineConfig;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::XcNormalizer;

    /// Two hub clusters whose nodes carry *different circuit statistics*
    /// (wide vs narrow devices): positives couple wide-to-wide, negatives
    /// wide-to-narrow. Note that a purely structural version of this task
    /// (isomorphic clusters, no feature difference) is provably
    /// unlearnable for a full-graph MPNN — which is exactly the
    /// limitation CircuitGPS's enclosing subgraphs address.
    fn toy() -> (FullGraphInputs, PairTask) {
        let mut b = GraphBuilder::new();
        let make_cluster = |b: &mut GraphBuilder, tag: &str, width: f32| -> Vec<u32> {
            let hub = b.add_node(NodeType::Net, &format!("{tag}h"));
            b.set_xc(hub, 4, width * 3.0);
            let mut v = vec![hub];
            for i in 0..5 {
                let p = b.add_node(NodeType::Pin, &format!("{tag}{i}"));
                b.set_xc(p, 0, width);
                b.add_edge(hub, p, EdgeType::NetPin);
                v.push(p);
            }
            v
        };
        let c1 = make_cluster(&mut b, "a", 4.0);
        let c2 = make_cluster(&mut b, "b", 0.5);
        let g = b.build();
        let xcn = XcNormalizer::fit(&[&g]);
        let inputs = FullGraphInputs::new(&g, &xcn);
        let mut task = PairTask::default();
        for i in 1..5 {
            task.pairs.push((c1[i], c1[i + 1]));
            task.labels.push(1.0);
            task.targets.push(0.8);
            task.pairs.push((c1[i], c2[i]));
            task.labels.push(0.0);
            task.targets.push(0.0);
        }
        (inputs, task)
    }

    #[test]
    fn baseline_link_training_learns_toy_task() {
        let (g, task) = toy();
        let mut m = Baseline::new(BaselineKind::ParaGraph, BaselineConfig::default());
        let cfg = BaselineTrainConfig {
            epochs: 150,
            lr: 1e-2,
            ..Default::default()
        };
        let loss = train_link(&mut m, &[(&g, &task)], &cfg);
        assert!(loss < 0.5, "loss {loss}");
        let metrics = evaluate_link(&m, &g, &task);
        assert!(metrics.accuracy > 0.7, "accuracy {:.3}", metrics.accuracy);
    }

    #[test]
    fn baseline_regression_fits() {
        let (g, task) = toy();
        let mut m = Baseline::new(BaselineKind::DlplCap, BaselineConfig::default());
        let cfg = BaselineTrainConfig {
            epochs: 200,
            lr: 1e-2,
            ..Default::default()
        };
        train_regression(&mut m, &[(&g, &task)], &cfg);
        let metrics = evaluate_regression(&m, &g, &task);
        assert!(metrics.mae < 0.25, "mae {:.3}", metrics.mae);
    }

    #[test]
    fn node_regression_round_trip() {
        let (g, _) = toy();
        let task = NodeTask {
            nodes: vec![0, 1, 2],
            targets: vec![0.2, 0.5, 0.7],
        };
        let mut m = Baseline::new(BaselineKind::ParaGraph, BaselineConfig::default());
        let cfg = BaselineTrainConfig {
            epochs: 150,
            lr: 1e-2,
            ..Default::default()
        };
        train_node_regression(&mut m, &[(&g, &task)], &cfg);
        let metrics = evaluate_node_regression(&m, &g, &task);
        assert!(metrics.mae < 0.3, "mae {:.3}", metrics.mae);
    }
}
