//! GraphSAGE-style mean-aggregation message-passing layer used as the
//! backbone of both baselines, plus full-graph feature assembly.
//!
//! Both ParaGraph [18] and DLPL-Cap [19], as adapted by the paper for the
//! coupling task, run message passing over the *entire* circuit graph with
//! the raw circuit statistics `XC` as node features — no subgraph
//! sampling, no positional encoding (Section IV-B).

use std::sync::Arc;

use circuit_graph::{CircuitGraph, NodeType, XC_DIM};
use cirgps_nn::{Linear, ParamStore, Tape, Tensor, Var};
use rand::rngs::StdRng;
use subgraph_sample::XcNormalizer;

/// Input feature width: normalized `XC` plus a one-hot node type.
pub const INPUT_DIM: usize = XC_DIM + NodeType::COUNT;

/// Full-graph tensors shared across training steps.
#[derive(Debug, Clone)]
pub struct FullGraphInputs {
    /// Node features, `N × INPUT_DIM`.
    pub features: Tensor,
    /// Directed arc sources.
    pub src: Arc<Vec<usize>>,
    /// Directed arc destinations.
    pub dst: Arc<Vec<usize>>,
    /// Inverse in-degree per node (for mean aggregation).
    pub inv_degree: Tensor,
}

impl FullGraphInputs {
    /// Assembles features and adjacency from a circuit graph.
    pub fn new(graph: &CircuitGraph, xcn: &XcNormalizer) -> FullGraphInputs {
        let n = graph.num_nodes();
        let mut feats = vec![0.0f32; n * INPUT_DIM];
        let xc = xcn.transform(graph.xc());
        for v in 0..n {
            feats[v * INPUT_DIM..v * INPUT_DIM + XC_DIM]
                .copy_from_slice(&xc[v * XC_DIM..(v + 1) * XC_DIM]);
            let t = graph.node_type(v as u32).code();
            feats[v * INPUT_DIM + XC_DIM + t] = 1.0;
        }
        let mut src = Vec::with_capacity(2 * graph.num_edges());
        let mut dst = Vec::with_capacity(2 * graph.num_edges());
        for v in 0..n as u32 {
            for &w in graph.adjacency(v).0 {
                src.push(w as usize);
                dst.push(v as usize);
            }
        }
        let inv_degree = Tensor::col(
            &(0..n)
                .map(|v| {
                    let d = graph.degree(v as u32) as f32;
                    if d > 0.0 {
                        1.0 / d
                    } else {
                        0.0
                    }
                })
                .collect::<Vec<f32>>(),
        );
        FullGraphInputs {
            features: Tensor::from_vec(n, INPUT_DIM, feats),
            src: Arc::new(src),
            dst: Arc::new(dst),
            inv_degree,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.features.rows()
    }
}

/// One SAGE layer: `h' = ReLU(W_self·h + W_nbr·mean_{u∈N(v)} h_u)`.
#[derive(Debug, Clone)]
pub struct SageLayer {
    w_self: Linear,
    w_nbr: Linear,
}

impl SageLayer {
    /// Registers a layer mapping `in_dim → out_dim`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        in_dim: usize,
        out_dim: usize,
        rng: &mut StdRng,
    ) -> Self {
        SageLayer {
            w_self: Linear::new(store, &format!("{name}.self"), in_dim, out_dim, true, rng),
            w_nbr: Linear::new(store, &format!("{name}.nbr"), in_dim, out_dim, false, rng),
        }
    }

    /// Applies the layer over the full graph.
    pub fn forward(&self, tape: &mut Tape, x: Var, g: &FullGraphInputs) -> Var {
        let n = g.num_nodes();
        let msgs = tape.gather(x, g.src.clone());
        let summed = tape.scatter_add(msgs, g.dst.clone(), n);
        let inv = tape.input(g.inv_degree.clone());
        let mean = tape.mul_colvec(summed, inv);
        let h_self = self.w_self.forward(tape, x);
        let h_nbr = self.w_nbr.forward(tape, mean);
        let h = tape.add(h_self, h_nbr);
        tape.relu(h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder};
    use rand::SeedableRng;

    fn tiny_graph() -> CircuitGraph {
        let mut b = GraphBuilder::new();
        let n = b.add_node(NodeType::Net, "n");
        let p = b.add_node(NodeType::Pin, "p");
        let d = b.add_node(NodeType::Device, "d");
        b.set_xc(n, 0, 4.0);
        b.add_edge(n, p, EdgeType::NetPin);
        b.add_edge(p, d, EdgeType::DevicePin);
        b.build()
    }

    #[test]
    fn features_concatenate_xc_and_type() {
        let g = tiny_graph();
        let xcn = XcNormalizer::fit(&[&g]);
        let inputs = FullGraphInputs::new(&g, &xcn);
        assert_eq!(inputs.features.shape(), (3, INPUT_DIM));
        // One-hot type of node 0 (net).
        assert_eq!(inputs.features.get(0, XC_DIM), 1.0);
        assert_eq!(inputs.features.get(1, XC_DIM + 2), 1.0);
        // Directed arcs: 2 undirected edges -> 4 arcs.
        assert_eq!(inputs.src.len(), 4);
    }

    #[test]
    fn sage_layer_shapes_and_grads() {
        let g = tiny_graph();
        let xcn = XcNormalizer::fit(&[&g]);
        let inputs = FullGraphInputs::new(&g, &xcn);
        let mut store = ParamStore::new();
        let mut rng = StdRng::seed_from_u64(0);
        let layer = SageLayer::new(&mut store, "s", INPUT_DIM, 8, &mut rng);
        let mut tape = Tape::new(&store, true, 0);
        let x = tape.input(inputs.features.clone());
        let h = layer.forward(&mut tape, x, &inputs);
        assert_eq!(tape.shape(h), (3, 8));
        let loss = tape.mse_loss(h, &vec![0.1; 24]);
        let mut grads = cirgps_nn::GradStore::new(&store);
        tape.backward(loss, &mut grads);
        assert!(store.iter().all(|(id, _, _)| grads.get(id).is_some()));
    }

    #[test]
    fn isolated_nodes_get_zero_neighbor_term() {
        let mut b = GraphBuilder::new();
        b.add_node(NodeType::Net, "lonely");
        let g = b.build();
        let xcn = XcNormalizer::fit(&[&g]);
        let inputs = FullGraphInputs::new(&g, &xcn);
        assert_eq!(inputs.inv_degree.get(0, 0), 0.0);
    }
}
