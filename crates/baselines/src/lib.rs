//! # cirgps-baselines
//!
//! Re-implementations of the paper's two comparison baselines —
//! **ParaGraph** (Ren et al., DAC 2020) and **DLPL-Cap** (Shen et al.,
//! GLSVLSI 2024) — adapted to the coupling-prediction task exactly as in
//! Section IV-B: full-graph message passing with circuit statistics `XC`
//! as node features, no subgraph sampling and no positional encoding.
//!
//! ## Example
//!
//! ```
//! use cirgps_baselines::{Baseline, BaselineConfig, BaselineKind};
//!
//! let model = Baseline::new(BaselineKind::ParaGraph, BaselineConfig::default());
//! assert!(model.num_params() > 0);
//! ```

#![warn(missing_docs)]

mod models;
mod sage;
mod train;

pub use models::{Baseline, BaselineConfig, BaselineKind, DLPL_EXPERTS, PARAGRAPH_ENSEMBLE};
pub use sage::{FullGraphInputs, SageLayer, INPUT_DIM};
pub use train::{
    evaluate_link, evaluate_node_regression, evaluate_regression, train_link,
    train_node_regression, train_regression, BaselineTrainConfig, NodeTask, PairTask,
};
