//! Laplacian positional encoding: the k smallest non-trivial eigenvectors
//! of the symmetric normalized graph Laplacian, computed by subspace
//! (orthogonal) iteration with Rayleigh–Ritz extraction.
//!
//! LapPE is the expensive encoding of Table II — the paper reports it an
//! order of magnitude slower per graph than DSPD. The subspace iteration
//! here costs `O(iters · (E·k + N·k²))` which preserves that ordering
//! while staying usable.

use subgraph_sample::Subgraph;

/// Computes the LapPE features: `k` columns per node, row-major
/// `N × k`. Sign is normalized so each eigenvector's largest-magnitude
/// entry is positive (training may randomly flip signs for augmentation).
pub fn lap_pe(sub: &Subgraph, k: usize) -> Vec<f32> {
    let n = sub.num_nodes();
    if n == 0 || k == 0 {
        return vec![0.0; n * k];
    }
    // Degree vector from directed arcs (each undirected edge contributes
    // one arc per endpoint).
    let mut degree = vec![0.0f64; n];
    for &s in &sub.src {
        degree[s] += 1.0;
    }
    let inv_sqrt_d: Vec<f64> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 })
        .collect();

    // We need the k smallest non-trivial eigenpairs of
    // L = I − D^{-1/2} A D^{-1/2}. Eigenvalues of L lie in [0, 2], so the
    // k+1 *largest* of M = 2I − L are the k+1 smallest of L, and the very
    // smallest of L (the trivial one, eigenvector D^{1/2}·1) is dropped.
    let dim = (k + 1).min(n);
    let mut basis = orthonormal_seed(n, dim);
    let mut scratch = vec![0.0f64; n];

    let apply_m = |x: &[f64], out: &mut [f64]| {
        // out = 2x − L x = x + D^{-1/2} A D^{-1/2} x
        out[..n].copy_from_slice(&x[..n]);
        for (&s, &d) in sub.src.iter().zip(&sub.dst) {
            out[d] += inv_sqrt_d[d] * inv_sqrt_d[s] * x[s];
        }
    };

    for _ in 0..60 {
        // Power step on every basis vector.
        for col in basis.iter_mut() {
            apply_m(col, &mut scratch);
            col.copy_from_slice(&scratch);
        }
        gram_schmidt(&mut basis);
    }

    // Rayleigh–Ritz: project M onto the basis, diagonalize the small
    // matrix, and sort ritz pairs by descending eigenvalue of M.
    let mut small = vec![vec![0.0f64; dim]; dim];
    let mut mb: Vec<Vec<f64>> = Vec::with_capacity(dim);
    for col in &basis {
        apply_m(col, &mut scratch);
        mb.push(scratch.clone());
    }
    for i in 0..dim {
        for j in 0..dim {
            small[i][j] = dot(&basis[i], &mb[j]);
        }
    }
    let (evals, evecs) = jacobi_eigen(&mut small);
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&a, &b| {
        evals[b]
            .partial_cmp(&evals[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    // Rotate the basis into ritz vectors; drop the first (trivial) one.
    let mut out = vec![0.0f32; n * k];
    for (slot, &oi) in order.iter().skip(1).take(k).enumerate() {
        let mut vec_i = vec![0.0f64; n];
        for (bi, col) in basis.iter().enumerate() {
            let w = evecs[bi][oi];
            for (v, &c) in vec_i.iter_mut().zip(col) {
                *v += w * c;
            }
        }
        // Sign convention: largest-magnitude entry positive.
        let mut max_abs = 0.0f64;
        let mut sign = 1.0f64;
        for &v in &vec_i {
            if v.abs() > max_abs {
                max_abs = v.abs();
                sign = if v >= 0.0 { 1.0 } else { -1.0 };
            }
        }
        for (row, &v) in vec_i.iter().enumerate() {
            out[row * k + slot] = (sign * v) as f32;
        }
    }
    out
}

fn orthonormal_seed(n: usize, dim: usize) -> Vec<Vec<f64>> {
    // Deterministic quasi-random seed vectors, then orthonormalized.
    let mut basis: Vec<Vec<f64>> = (0..dim)
        .map(|c| {
            (0..n)
                .map(|i| {
                    let x = ((i * 2654435761 + c * 40503 + 12345) & 0xffff) as f64;
                    x / 65535.0 - 0.5
                })
                .collect()
        })
        .collect();
    gram_schmidt(&mut basis);
    basis
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(&x, &y)| x * y).sum()
}

fn gram_schmidt(basis: &mut [Vec<f64>]) {
    for i in 0..basis.len() {
        for j in 0..i {
            let proj = dot(&basis[i], &basis[j]);
            let bj = basis[j].clone();
            for (v, &w) in basis[i].iter_mut().zip(&bj) {
                *v -= proj * w;
            }
        }
        let norm = dot(&basis[i], &basis[i]).sqrt();
        if norm > 1e-12 {
            for v in basis[i].iter_mut() {
                *v /= norm;
            }
        } else {
            // Degenerate direction: reseed deterministically.
            for (idx, v) in basis[i].iter_mut().enumerate() {
                *v = if idx % (i + 2) == 0 { 1.0 } else { -0.3 };
            }
            let norm = dot(&basis[i], &basis[i]).sqrt();
            for v in basis[i].iter_mut() {
                *v /= norm;
            }
        }
    }
}

/// Jacobi eigendecomposition of a small symmetric matrix (in place).
/// Returns `(eigenvalues, eigenvectors)` with eigenvectors as columns:
/// `evecs[row][col]`.
#[allow(clippy::needless_range_loop)] // symmetric-matrix rotations read clearest with indices
fn jacobi_eigen(a: &mut [Vec<f64>]) -> (Vec<f64>, Vec<Vec<f64>>) {
    let n = a.len();
    let mut v = vec![vec![0.0f64; n]; n];
    for (i, row) in v.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    for _sweep in 0..50 {
        let mut off = 0.0;
        for i in 0..n {
            for j in i + 1..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off < 1e-18 {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let evals = (0..n).map(|i| a[i][i]).collect();
    (evals, v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::{SamplerConfig, SubgraphSampler};

    fn path_subgraph(n: usize) -> Subgraph {
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..n)
            .map(|i| b.add_node(NodeType::Net, &format!("v{i}")))
            .collect();
        for w in ids.windows(2) {
            b.add_edge(w[0], w[1], EdgeType::NetPin);
        }
        let g = b.build();
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 32,
                max_nodes: 4096,
            },
        );
        s.node_subgraph(0)
    }

    #[test]
    fn path_fiedler_vector_changes_sign_once() {
        // For a path graph the first non-trivial eigenvector (Fiedler) of
        // the normalized Laplacian crosses zero exactly once along the
        // path (endpoints are 1/√degree-scaled, so it is not monotone).
        let sub = path_subgraph(12);
        let pe = lap_pe(&sub, 2);
        // Column 0 per node, in node order (BFS from 0 = path order).
        let col0: Vec<f32> = (0..12).map(|i| pe[i * 2]).collect();
        let sign_changes = col0
            .windows(2)
            .filter(|w| (w[0] >= 0.0) != (w[1] >= 0.0))
            .count();
        assert_eq!(sign_changes, 1, "fiedler vector: {col0:?}");
        // Antisymmetric about the path center.
        for i in 0..6 {
            assert!((col0[i] + col0[11 - i]).abs() < 0.02, "{col0:?}");
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let sub = path_subgraph(16);
        let k = 3;
        let pe = lap_pe(&sub, k);
        let n = sub.num_nodes();
        for a in 0..k {
            for b in a..k {
                let dot: f32 = (0..n).map(|i| pe[i * k + a] * pe[i * k + b]).sum();
                if a == b {
                    assert!((dot - 1.0).abs() < 0.05, "norm of col {a}: {dot}");
                } else {
                    assert!(dot.abs() < 0.05, "cols {a},{b} not orthogonal: {dot}");
                }
            }
        }
    }

    #[test]
    fn handles_tiny_graphs() {
        let sub = path_subgraph(2);
        let pe = lap_pe(&sub, 4);
        assert_eq!(pe.len(), 2 * 4);
        assert!(pe.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn deterministic() {
        let sub = path_subgraph(10);
        assert_eq!(lap_pe(&sub, 3), lap_pe(&sub, 3));
    }
}
