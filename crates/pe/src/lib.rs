//! # graph-pe
//!
//! Positional/structural encodings for sampled circuit subgraphs
//! (Section III-C of the paper and its Table II comparison):
//!
//! * **DSPD** — the paper's double-anchor shortest-path distance: each
//!   node carries its distance pair to the two subgraph anchors (cheap,
//!   and the most accurate in Table II);
//! * **DRNL** — SEAL's double-radius node labeling hash;
//! * **RWSE** — random-walk return probabilities `diag(P^t)`, `t = 1..k`;
//! * **LapPE** — eigenvectors of the normalized Laplacian;
//! * **XC** — the raw circuit statistics used *as* a PE (the paper's
//!   Observation 1 shows this hurts generalization);
//! * **None** — no positional encoding.
//!
//! ## Example
//!
//! ```
//! use circuit_graph::{EdgeType, GraphBuilder, NodeType};
//! use graph_pe::{compute_pe, PeKind};
//! use subgraph_sample::{SamplerConfig, SubgraphSampler};
//!
//! let mut b = GraphBuilder::new();
//! let a = b.add_node(NodeType::Net, "a");
//! let p = b.add_node(NodeType::Pin, "p");
//! b.add_edge(a, p, EdgeType::NetPin);
//! let g = b.build();
//! let mut s = SubgraphSampler::new(&g, SamplerConfig::default());
//! let sub = s.enclosing_subgraph(a, p);
//!
//! let pe = compute_pe(&sub, PeKind::Dspd);
//! assert_eq!(pe.num_nodes(), 2);
//! ```

#![warn(missing_docs)]

mod lappe;

use circuit_graph::XC_DIM;
use subgraph_sample::{Subgraph, UNREACHABLE};

pub use lappe::lap_pe;

/// Which positional encoding to compute (Table II rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PeKind {
    /// No PE.
    None,
    /// Circuit statistics `XC` used as the PE (Observation 1 baseline).
    Xc,
    /// SEAL's double-radius node labeling.
    Drnl,
    /// Random-walk structural encoding with `k` steps.
    Rwse {
        /// Number of random-walk steps.
        k: usize,
    },
    /// Laplacian eigenvector PE with `k` eigenvectors.
    LapPe {
        /// Number of non-trivial eigenvectors.
        k: usize,
    },
    /// The paper's double-anchor shortest-path distance.
    Dspd,
}

impl PeKind {
    /// All Table II variants in row order.
    pub const TABLE2: [PeKind; 6] = [
        PeKind::None,
        PeKind::Xc,
        PeKind::Drnl,
        PeKind::Rwse { k: 8 },
        PeKind::LapPe { k: 4 },
        PeKind::Dspd,
    ];

    /// Display name matching the paper's Table II.
    pub fn paper_name(self) -> &'static str {
        match self {
            PeKind::None => "w/o PE",
            PeKind::Xc => "XC",
            PeKind::Drnl => "DRNL",
            PeKind::Rwse { .. } => "RWSE",
            PeKind::LapPe { .. } => "LapPE",
            PeKind::Dspd => "DSPD",
        }
    }
}

/// Computed PE features for one subgraph.
#[derive(Debug, Clone, PartialEq)]
pub enum PeFeatures {
    /// No features.
    None {
        /// Node count (kept so `num_nodes` is total).
        n: usize,
    },
    /// One categorical index per node (DRNL), plus the table size.
    Categorical {
        /// Per-node class index.
        codes: Vec<usize>,
        /// Number of classes (embedding-table size).
        num_classes: usize,
    },
    /// Two categorical indices per node (DSPD distance pair).
    CategoricalPair {
        /// Distance-to-anchor-0 codes.
        a: Vec<usize>,
        /// Distance-to-anchor-1 codes.
        b: Vec<usize>,
        /// Number of classes per code.
        num_classes: usize,
    },
    /// Dense per-node features (RWSE, LapPE, XC), row-major `N × dim`.
    Dense {
        /// Feature matrix.
        data: Vec<f32>,
        /// Feature width.
        dim: usize,
    },
}

impl PeFeatures {
    /// Number of nodes covered.
    pub fn num_nodes(&self) -> usize {
        match self {
            PeFeatures::None { n } => *n,
            PeFeatures::Categorical { codes, .. } => codes.len(),
            PeFeatures::CategoricalPair { a, .. } => a.len(),
            PeFeatures::Dense { data, dim } => {
                if *dim == 0 {
                    0
                } else {
                    data.len() / dim
                }
            }
        }
    }
}

/// Number of distance classes for DSPD/DRNL embeddings: distances are
/// clamped to [`UNREACHABLE`].
pub const DIST_CLASSES: usize = UNREACHABLE as usize + 1;

/// Computes the requested PE for a subgraph.
pub fn compute_pe(sub: &Subgraph, kind: PeKind) -> PeFeatures {
    match kind {
        PeKind::None => PeFeatures::None { n: sub.num_nodes() },
        PeKind::Xc => PeFeatures::Dense {
            data: sub.xc.clone(),
            dim: XC_DIM,
        },
        PeKind::Dspd => dspd(sub),
        PeKind::Drnl => drnl(sub),
        PeKind::Rwse { k } => PeFeatures::Dense {
            data: rwse(sub, k),
            dim: k,
        },
        PeKind::LapPe { k } => PeFeatures::Dense {
            data: lap_pe(sub, k),
            dim: k,
        },
    }
}

/// DSPD: the distance pair `(d(i, m), d(i, n))`, clamped, stored as two
/// embedding codes per node (the model learns `D0` and `D1` tables and
/// concatenates them with the node-type embedding, eq. (1)).
pub fn dspd(sub: &Subgraph) -> PeFeatures {
    let clamp = |d: u32| (d.min(UNREACHABLE)) as usize;
    PeFeatures::CategoricalPair {
        a: sub.dist_a.iter().map(|&d| clamp(d)).collect(),
        b: sub.dist_b.iter().map(|&d| clamp(d)).collect(),
        num_classes: DIST_CLASSES,
    }
}

/// DRNL: SEAL's closed-form double-radius hash
/// `f(i) = 1 + min(da, db) + (d/2)·(⌈d/2⌉ + (d mod 2) − 1)` with
/// `d = da + db`; anchors get label 1, unreachable nodes label 0.
pub fn drnl(sub: &Subgraph) -> PeFeatures {
    let mut codes = Vec::with_capacity(sub.num_nodes());
    let mut max_code = 1usize;
    for i in 0..sub.num_nodes() {
        let da = sub.dist_a[i];
        let db = sub.dist_b[i];
        let code = if i < sub.num_anchors {
            1
        } else if da >= UNREACHABLE || db >= UNREACHABLE {
            0
        } else {
            let d = (da + db) as usize;
            let half = d / 2;
            1 + (da.min(db) as usize) + half * (half + d % 2 - 1)
        };
        max_code = max_code.max(code);
        codes.push(code);
    }
    // Table size covers the clamped-distance worst case.
    let worst = {
        let d = 2 * (UNREACHABLE as usize - 1);
        let half = d / 2;
        2 + (UNREACHABLE as usize) + half * (half - 1)
    };
    PeFeatures::Categorical {
        codes,
        num_classes: worst.max(max_code + 1),
    }
}

/// RWSE: `diag(P^t)` for `t = 1..=k`, where `P = D⁻¹A` is the random-walk
/// transition matrix, computed with a dense `N × N` power sequence.
pub fn rwse(sub: &Subgraph, k: usize) -> Vec<f32> {
    let n = sub.num_nodes();
    let mut out = vec![0.0f32; n * k];
    if n == 0 || k == 0 {
        return out;
    }
    let mut degree = vec![0.0f32; n];
    for &s in &sub.src {
        degree[s] += 1.0;
    }
    let inv_deg: Vec<f32> = degree
        .iter()
        .map(|&d| if d > 0.0 { 1.0 / d } else { 0.0 })
        .collect();

    // cur = P^t (row-major), starting from identity.
    let mut cur = vec![0.0f32; n * n];
    for i in 0..n {
        cur[i * n + i] = 1.0;
    }
    let mut next = vec![0.0f32; n * n];
    for t in 0..k {
        next.iter_mut().for_each(|v| *v = 0.0);
        // P[d][s] = 1/deg(d) for each arc s->d (arcs are symmetric), so
        // next row d accumulates cur row s scaled by 1/deg(d).
        for (&s, &d) in sub.src.iter().zip(&sub.dst) {
            let w = inv_deg[d];
            let src_row = &cur[s * n..(s + 1) * n];
            let dst_row = &mut next[d * n..(d + 1) * n];
            for (o, &x) in dst_row.iter_mut().zip(src_row) {
                *o += w * x;
            }
        }
        std::mem::swap(&mut cur, &mut next);
        for i in 0..n {
            out[i * k + t] = cur[i * n + i];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use circuit_graph::{EdgeType, GraphBuilder, NodeType};
    use subgraph_sample::{SamplerConfig, SubgraphSampler};

    fn triangle_plus_tail() -> Subgraph {
        // 0-1, 1-2, 2-0 triangle with tail 2-3.
        let mut b = GraphBuilder::new();
        let ids: Vec<u32> = (0..4)
            .map(|i| b.add_node(NodeType::Net, &format!("v{i}")))
            .collect();
        b.add_edge(ids[0], ids[1], EdgeType::NetPin);
        b.add_edge(ids[1], ids[2], EdgeType::NetPin);
        b.add_edge(ids[2], ids[0], EdgeType::NetPin);
        b.add_edge(ids[2], ids[3], EdgeType::NetPin);
        let g = b.build();
        let mut s = SubgraphSampler::new(
            &g,
            SamplerConfig {
                hops: 8,
                max_nodes: 64,
            },
        );
        s.enclosing_subgraph(0, 1)
    }

    #[test]
    fn dspd_pairs_match_bfs() {
        let sub = triangle_plus_tail();
        let pe = compute_pe(&sub, PeKind::Dspd);
        let PeFeatures::CategoricalPair { a, b, num_classes } = pe else {
            panic!("wrong variant")
        };
        assert_eq!(num_classes, DIST_CLASSES);
        assert_eq!(a[0], 0); // anchor m
        assert_eq!(b[0], 1);
        assert_eq!(a[1], 1); // anchor n
        assert_eq!(b[1], 0);
    }

    #[test]
    fn drnl_anchor_labels_are_one() {
        let sub = triangle_plus_tail();
        let PeFeatures::Categorical { codes, num_classes } = compute_pe(&sub, PeKind::Drnl) else {
            panic!("wrong variant")
        };
        assert_eq!(codes[0], 1);
        assert_eq!(codes[1], 1);
        assert!(codes.iter().all(|&c| c < num_classes));
        // Non-anchor labels exceed 1.
        assert!(codes[2..].iter().all(|&c| c != 1));
    }

    #[test]
    fn drnl_is_a_perfect_hash_of_distance_pairs() {
        // Nodes with identical (da, db) get identical labels and distinct
        // pairs get distinct labels (on reachable nodes).
        let sub = triangle_plus_tail();
        let PeFeatures::Categorical { codes, .. } = compute_pe(&sub, PeKind::Drnl) else {
            panic!()
        };
        let mut seen: std::collections::HashMap<(u32, u32), usize> =
            std::collections::HashMap::new();
        for i in sub.num_anchors..sub.num_nodes() {
            let key = (sub.dist_a[i], sub.dist_b[i]);
            if key.0 >= UNREACHABLE || key.1 >= UNREACHABLE {
                continue;
            }
            if let Some(&prev) = seen.get(&key) {
                assert_eq!(prev, codes[i]);
            } else {
                for (&k2, &c2) in &seen {
                    if k2 != key {
                        assert_ne!(c2, codes[i], "collision between {key:?} and {k2:?}");
                    }
                }
                seen.insert(key, codes[i]);
            }
        }
    }

    #[test]
    fn rwse_first_step_is_zero_without_self_loops() {
        let sub = triangle_plus_tail();
        let data = rwse(&sub, 3);
        // diag(P^1) = 0 on simple graphs.
        for i in 0..sub.num_nodes() {
            assert_eq!(data[i * 3], 0.0);
        }
        // diag(P^2) > 0 for nodes with any neighbor.
        for i in 0..sub.num_nodes() {
            assert!(data[i * 3 + 1] > 0.0, "node {i}");
        }
    }

    #[test]
    fn rwse_rows_are_return_probabilities() {
        let sub = triangle_plus_tail();
        let data = rwse(&sub, 6);
        assert!(data.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn xc_pe_passes_statistics_through() {
        let sub = triangle_plus_tail();
        let PeFeatures::Dense { data, dim } = compute_pe(&sub, PeKind::Xc) else {
            panic!()
        };
        assert_eq!(dim, XC_DIM);
        assert_eq!(data.len(), sub.num_nodes() * XC_DIM);
    }

    #[test]
    fn none_pe_has_node_count() {
        let sub = triangle_plus_tail();
        assert_eq!(compute_pe(&sub, PeKind::None).num_nodes(), sub.num_nodes());
    }

    #[test]
    fn table2_names() {
        let names: Vec<&str> = PeKind::TABLE2.iter().map(|k| k.paper_name()).collect();
        assert_eq!(names, ["w/o PE", "XC", "DRNL", "RWSE", "LapPE", "DSPD"]);
    }
}
