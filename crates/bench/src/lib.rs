//! # cirgps-bench
//!
//! Experiment harnesses that regenerate every table and figure of the
//! paper's evaluation section. Each `table*`/`fig4` binary prints the
//! corresponding markdown table; `cargo bench` runs criterion
//! micro-benchmarks for the performance-bearing components (PE cost,
//! layer forward cost, sampling throughput, inference latency, simulator
//! throughput).
//!
//! ```bash
//! cargo run --release -p cirgps-bench --bin table2 -- --preset small --seed 7
//! ```

#![warn(missing_docs)]

pub mod compare;
pub mod data;
pub mod experiments;
pub mod perf;

pub use data::{
    fit_normalizer, markdown_table, parse_cli, test_designs, training_designs, DesignData,
};
pub use experiments::{
    default_model, fig4, layer_ablation_configs, main_comparison, table2, table3, table4, table5,
    table6, table7, table8, MainComparison, Scale,
};
