//! Shared experiment data: generated designs, extracted parasitics,
//! graphs and datasets, with consistent seeds across all tables.

use ams_datagen::{extract_parasitics, generate, Design, DesignKind, ExtractConfig, SizePreset};
use ams_netlist::SpfFile;
use circuit_graph::{netlist_to_graph, CircuitGraph, GraphStats, NodeMap};
use subgraph_sample::{DatasetConfig, LinkDataset, NodeDataset, XcNormalizer};

/// Everything derived from one generated design.
#[derive(Debug)]
pub struct DesignData {
    /// The design archetype.
    pub kind: DesignKind,
    /// The placed design (netlist + floorplan).
    pub design: Design,
    /// Synthesized parasitic ground truth.
    pub spf: SpfFile,
    /// Heterogeneous circuit graph.
    pub graph: CircuitGraph,
    /// Netlist-to-graph node map.
    pub map: NodeMap,
}

impl DesignData {
    /// Generates and extracts one design.
    ///
    /// # Panics
    ///
    /// Panics on generator bugs (all archetypes are covered by tests).
    pub fn load(kind: DesignKind, preset: SizePreset, seed: u64) -> DesignData {
        let design = generate(kind, preset).expect("design generation");
        let spf = extract_parasitics(
            &design,
            &ExtractConfig {
                seed: seed ^ kind_seed(kind),
                ..Default::default()
            },
        );
        let (graph, map) = netlist_to_graph(&design.netlist);
        DesignData {
            kind,
            design,
            spf,
            graph,
            map,
        }
    }

    /// Table IV-style statistics line.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(self.kind.paper_name(), &self.graph)
    }

    /// Builds the link dataset for this design.
    pub fn link_dataset(&self, cfg: &DatasetConfig) -> LinkDataset {
        LinkDataset::build(
            self.kind.paper_name(),
            &self.graph,
            &self.design.netlist,
            &self.map,
            &self.spf,
            cfg,
        )
    }

    /// Builds the node (ground-capacitance) dataset for this design.
    pub fn node_dataset(&self, max_samples: usize, hops: u32, seed: u64) -> NodeDataset {
        NodeDataset::build(
            self.kind.paper_name(),
            &self.graph,
            &self.design.netlist,
            &self.map,
            &self.spf,
            max_samples,
            hops,
            seed,
        )
    }
}

fn kind_seed(kind: DesignKind) -> u64 {
    match kind {
        DesignKind::Ssram => 0x51,
        DesignKind::Ultra8t => 0x52,
        DesignKind::SandwichRam => 0x53,
        DesignKind::DigitalClkGen => 0x54,
        DesignKind::TimingControl => 0x55,
        DesignKind::Array128x32 => 0x56,
    }
}

/// Loads the three training designs (SSRAM, ULTRA8T, SANDWICH-RAM).
pub fn training_designs(preset: SizePreset, seed: u64) -> Vec<DesignData> {
    [
        DesignKind::Ssram,
        DesignKind::Ultra8t,
        DesignKind::SandwichRam,
    ]
    .into_iter()
    .map(|k| DesignData::load(k, preset, seed))
    .collect()
}

/// Loads the three zero-shot test designs.
pub fn test_designs(preset: SizePreset, seed: u64) -> Vec<DesignData> {
    [
        DesignKind::DigitalClkGen,
        DesignKind::TimingControl,
        DesignKind::Array128x32,
    ]
    .into_iter()
    .map(|k| DesignData::load(k, preset, seed))
    .collect()
}

/// Fits the `XC` normalizer on training graphs only (no test leakage).
pub fn fit_normalizer(training: &[DesignData]) -> XcNormalizer {
    let graphs: Vec<&CircuitGraph> = training.iter().map(|d| &d.graph).collect();
    XcNormalizer::fit(&graphs)
}

/// Parses `--preset tiny|small|paper` and `--seed N` from argv, with
/// defaults `(small, 7)`. Unknown arguments are ignored so binaries can
/// add their own flags.
pub fn parse_cli() -> (SizePreset, u64) {
    let args: Vec<String> = std::env::args().collect();
    let mut preset = SizePreset::Small;
    let mut seed = 7u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--preset" if i + 1 < args.len() => {
                preset = match args[i + 1].as_str() {
                    "tiny" => SizePreset::Tiny,
                    "small" => SizePreset::Small,
                    "paper" => SizePreset::Paper,
                    other => panic!("unknown preset {other:?} (tiny|small|paper)"),
                };
                i += 1;
            }
            "--seed" if i + 1 < args.len() => {
                seed = args[i + 1].parse().expect("--seed takes an integer");
                i += 1;
            }
            _ => {}
        }
        i += 1;
    }
    (preset, seed)
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in headers {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for cell in row {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_design_data_loads() {
        let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 3);
        assert!(d.graph.num_nodes() > 100);
        assert!(!d.spf.coupling_caps.is_empty());
        let ds = d.link_dataset(&DatasetConfig {
            max_per_type: 50,
            ..Default::default()
        });
        assert!(!ds.is_empty());
    }

    #[test]
    fn markdown_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }
}
