//! Bench-snapshot comparison: parses `BENCH_*.json` line files and
//! computes per-group regressions against a committed baseline, so CI
//! can fail a PR that slows a tracked benchmark group down.
//!
//! Comparison is group-level (geometric mean of the per-benchmark
//! `new / old` ratios over the labels present in **both** snapshots), so
//! newly added benchmarks never fail the gate and one noisy microbench
//! cannot sink a group on its own.

use std::collections::BTreeMap;
use std::fmt;

/// One parsed benchmark entry.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    /// Benchmark group.
    pub group: String,
    /// Benchmark name within the group.
    pub name: String,
    /// Nanoseconds per iteration.
    pub ns_per_iter: f64,
}

/// Extracts the string value of `"key":"..."` from a JSON line written
/// by the bench harness (handles the harness's `\"`/`\\` escapes).
fn json_str_field(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let mut out = String::new();
    let mut chars = line[start..].chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => out.push(chars.next()?),
            c => out.push(c),
        }
    }
    None
}

/// Extracts the numeric value of `"key":<num>` from a JSON line.
fn json_num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a `BENCH_*.json` snapshot (one JSON object per line; blank or
/// malformed lines are skipped).
pub fn parse_bench_lines(text: &str) -> Vec<BenchEntry> {
    text.lines()
        .filter_map(|line| {
            Some(BenchEntry {
                group: json_str_field(line, "group")?,
                name: json_str_field(line, "name")?,
                ns_per_iter: json_num_field(line, "ns_per_iter")?,
            })
        })
        .collect()
}

/// One benchmark present in both snapshots.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// `group/name` label.
    pub label: String,
    /// Baseline ns/iter.
    pub old_ns: f64,
    /// Current ns/iter.
    pub new_ns: f64,
}

impl BenchDelta {
    /// `new / old` (> 1 means slower).
    pub fn ratio(&self) -> f64 {
        self.new_ns / self.old_ns
    }
}

/// Aggregated per-group comparison.
#[derive(Debug, Clone)]
pub struct GroupDelta {
    /// Group name.
    pub group: String,
    /// Geometric mean of the member ratios.
    pub geomean_ratio: f64,
    /// Members present in both snapshots.
    pub members: Vec<BenchDelta>,
}

/// Full comparison report.
#[derive(Debug, Clone)]
pub struct CompareReport {
    /// Per-group aggregates (tracked groups only: present in both files).
    pub groups: Vec<GroupDelta>,
    /// Baseline groups with no benchmark in the fresh run — a suite that
    /// silently stopped running would otherwise read as "no regression".
    pub missing_groups: Vec<String>,
    /// Allowed regression in percent (e.g. `30.0`).
    pub tolerance_pct: f64,
}

impl CompareReport {
    /// Groups whose geometric-mean ratio exceeds the tolerance.
    pub fn regressed_groups(&self) -> Vec<&GroupDelta> {
        let limit = 1.0 + self.tolerance_pct / 100.0;
        self.groups
            .iter()
            .filter(|g| g.geomean_ratio > limit)
            .collect()
    }

    /// Whether the gate passes: no regressed group and no baseline group
    /// missing from the fresh run.
    pub fn passed(&self) -> bool {
        self.regressed_groups().is_empty() && self.missing_groups.is_empty()
    }
}

impl fmt::Display for CompareReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let limit = 1.0 + self.tolerance_pct / 100.0;
        for g in &self.groups {
            let verdict = if g.geomean_ratio > limit {
                "REGRESSED"
            } else if g.geomean_ratio < 1.0 {
                "improved"
            } else {
                "ok"
            };
            writeln!(
                f,
                "{:<28} geomean {:>6.3}x  [{}]",
                g.group, g.geomean_ratio, verdict
            )?;
            for m in &g.members {
                writeln!(
                    f,
                    "    {:<52} {:>12.0} -> {:>12.0} ns  ({:.3}x)",
                    m.label,
                    m.old_ns,
                    m.new_ns,
                    m.ratio()
                )?;
            }
        }
        for g in &self.missing_groups {
            writeln!(f, "{g:<28} MISSING from fresh run (baseline-only group)")?;
        }
        writeln!(
            f,
            "tolerance: {:.0}% (fail above {limit:.2}x group geomean)",
            self.tolerance_pct
        )
    }
}

/// Compares `current` against `baseline`, aggregating per group over the
/// benchmarks present in both.
pub fn compare(
    baseline: &[BenchEntry],
    current: &[BenchEntry],
    tolerance_pct: f64,
) -> CompareReport {
    let old: BTreeMap<(String, String), f64> = baseline
        .iter()
        .map(|e| ((e.group.clone(), e.name.clone()), e.ns_per_iter))
        .collect();
    let mut groups: BTreeMap<String, Vec<BenchDelta>> = BTreeMap::new();
    for e in current {
        let Some(&old_ns) = old.get(&(e.group.clone(), e.name.clone())) else {
            continue;
        };
        if !(old_ns > 0.0 && e.ns_per_iter > 0.0) {
            continue;
        }
        groups.entry(e.group.clone()).or_default().push(BenchDelta {
            label: format!("{}/{}", e.group, e.name),
            old_ns,
            new_ns: e.ns_per_iter,
        });
    }
    let current_groups: std::collections::BTreeSet<&str> =
        current.iter().map(|e| e.group.as_str()).collect();
    let mut missing_groups: Vec<String> = baseline
        .iter()
        .map(|e| e.group.as_str())
        .filter(|g| !current_groups.contains(g))
        .map(String::from)
        .collect();
    missing_groups.sort();
    missing_groups.dedup();
    let groups = groups
        .into_iter()
        .map(|(group, members)| {
            let log_sum: f64 = members.iter().map(|m| m.ratio().ln()).sum();
            GroupDelta {
                group,
                geomean_ratio: (log_sum / members.len() as f64).exp(),
                members,
            }
        })
        .collect();
    CompareReport {
        groups,
        missing_groups,
        tolerance_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(group: &str, name: &str, ns: f64) -> String {
        format!(
            "{{\"group\":\"{group}\",\"name\":\"{name}\",\"ns_per_iter\":{ns:.2},\"iters\":10}}"
        )
    }

    #[test]
    fn parses_harness_lines() {
        let text = format!(
            "{}\n\n{}\nnot json\n",
            entry("g1", "a/b", 1500.0),
            entry("g2", "c", 2.5)
        );
        let parsed = parse_bench_lines(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].group, "g1");
        assert_eq!(parsed[0].name, "a/b");
        assert_eq!(parsed[0].ns_per_iter, 1500.0);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = parse_bench_lines(&entry("g", "a", 100.0));
        let cur = parse_bench_lines(&entry("g", "a", 125.0));
        let report = compare(&base, &cur, 30.0);
        assert!(report.passed(), "{report}");
        assert!((report.groups[0].geomean_ratio - 1.25).abs() < 1e-9);
    }

    #[test]
    fn group_regression_fails() {
        let base = format!("{}\n{}", entry("g", "a", 100.0), entry("g", "b", 100.0));
        let cur = format!("{}\n{}", entry("g", "a", 200.0), entry("g", "b", 150.0));
        let report = compare(&parse_bench_lines(&base), &parse_bench_lines(&cur), 30.0);
        assert!(!report.passed());
        assert_eq!(report.regressed_groups()[0].group, "g");
    }

    #[test]
    fn one_noisy_member_is_amortized_by_the_geomean() {
        let base = format!(
            "{}\n{}\n{}",
            entry("g", "a", 100.0),
            entry("g", "b", 100.0),
            entry("g", "c", 100.0)
        );
        // One 60% outlier against two flat members: geomean ≈ 1.17.
        let cur = format!(
            "{}\n{}\n{}",
            entry("g", "a", 160.0),
            entry("g", "b", 100.0),
            entry("g", "c", 100.0)
        );
        let report = compare(&parse_bench_lines(&base), &parse_bench_lines(&cur), 30.0);
        assert!(report.passed(), "{report}");
    }

    #[test]
    fn new_benchmarks_are_not_tracked() {
        let base = parse_bench_lines(&entry("g", "a", 100.0));
        let cur = format!(
            "{}\n{}",
            entry("g", "a", 90.0),
            entry("g", "brand_new", 1e9)
        );
        let report = compare(&base, &parse_bench_lines(&cur), 30.0);
        assert!(report.passed());
        assert_eq!(report.groups[0].members.len(), 1);
    }

    #[test]
    fn baseline_only_groups_fail_the_gate_and_are_listed() {
        let base = format!(
            "{}\n{}",
            entry("kept", "a", 100.0),
            entry("vanished", "x", 50.0)
        );
        let cur = parse_bench_lines(&entry("kept", "a", 100.0));
        let report = compare(&parse_bench_lines(&base), &cur, 30.0);
        assert_eq!(report.missing_groups, vec!["vanished".to_string()]);
        assert!(!report.passed(), "{report}");
        assert!(report.regressed_groups().is_empty());
        assert!(format!("{report}").contains("vanished"), "{report}");
        assert!(format!("{report}").contains("MISSING"), "{report}");
    }

    #[test]
    fn improvement_reports_below_one() {
        let base = parse_bench_lines(&entry("g", "a", 300.0));
        let cur = parse_bench_lines(&entry("g", "a", 100.0));
        let report = compare(&base, &cur, 30.0);
        assert!(report.passed());
        assert!(report.groups[0].geomean_ratio < 0.34);
        assert!(format!("{report}").contains("improved"));
    }
}
