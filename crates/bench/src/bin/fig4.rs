//! Regenerates Fig. 4: simulated switching energy with ground-truth vs
//! predicted capacitances (requires the Table V/VI training run to get
//! the fine-tuned model).
fn main() {
    let (preset, seed) = cirgps_bench::parse_cli();
    let cmp = cirgps_bench::main_comparison(preset, seed);
    println!("{}", cirgps_bench::fig4(preset, seed, &cmp));
}
