//! Perf-snapshot harness: runs the criterion suites (`layer_forward`,
//! `sampling`, `full_pipeline`) in-process and writes every result as a
//! JSON line `{"group", "name", "ns_per_iter", "iters"}` to
//! `BENCH_<date>.json`, so successive PRs accumulate a comparable perf
//! trajectory.
//!
//! ```bash
//! cargo run --release -p cirgps-bench --bin bench_json            # BENCH_<today>.json
//! cargo run --release -p cirgps-bench --bin bench_json -- out.json
//! CIRGPS_BENCH_MS=100 cargo run --release -p cirgps-bench --bin bench_json
//! ```

use std::io::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

use cirgps_bench::perf;
use criterion::Criterion;

/// Civil date from a Unix timestamp (days-from-epoch algorithm, UTC).
fn today_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| {
        let (y, m, d) = today_utc();
        format!("BENCH_{y:04}-{m:02}-{d:02}.json")
    });

    let mut c = Criterion::default();
    eprintln!("== layer_forward ==");
    perf::layer_forward_suite(&mut c);
    eprintln!("== sampling ==");
    perf::sampling_suite(&mut c);
    eprintln!("== full_pipeline ==");
    perf::full_pipeline_suite(&mut c);

    let mut f = std::fs::File::create(&out_path).expect("cannot create bench output file");
    for r in c.results() {
        writeln!(f, "{}", r.to_json()).expect("write failed");
    }
    eprintln!("wrote {} results to {out_path}", c.results().len());
}
