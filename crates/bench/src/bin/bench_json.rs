//! Perf-snapshot harness: runs the criterion suites (`layer_forward`,
//! `attention`, `sampling`, `full_pipeline`, `serve_throughput`,
//! `sweep_throughput`, `datagen_enumerate`) in-process and writes every
//! result as a
//! JSON line `{"group", "name", "ns_per_iter", "iters"}` to
//! `BENCH_<date>.json`, so successive PRs accumulate a comparable perf
//! trajectory.
//!
//! With `--compare <baseline.json>` the snapshot is additionally gated
//! against a committed baseline: any tracked group (present in both
//! files) whose geometric-mean `new/old` ratio regresses by more than
//! `--tolerance <pct>` (default 30) fails the run with exit code 1 —
//! this is the CI bench-regression gate.
//!
//! ```bash
//! cargo run --release -p cirgps-bench --bin bench_json            # BENCH_<today>.json
//! cargo run --release -p cirgps-bench --bin bench_json -- out.json
//! cargo run --release -p cirgps-bench --bin bench_json -- out.json \
//!     --compare BENCH_2026-07-29.json --tolerance 30
//! CIRGPS_BENCH_MS=100 cargo run --release -p cirgps-bench --bin bench_json
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::{SystemTime, UNIX_EPOCH};

use cirgps_bench::compare::{compare, parse_bench_lines, BenchEntry};
use cirgps_bench::perf;
use criterion::Criterion;

/// Civil date from a Unix timestamp (days-from-epoch algorithm, UTC).
fn today_utc() -> (i64, u32, u32) {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

struct Args {
    out_path: String,
    baseline: Option<String>,
    tolerance_pct: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut out_path = None;
    let mut baseline = None;
    let mut tolerance_pct = 30.0;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--compare" => {
                baseline = Some(it.next().ok_or("--compare needs a baseline path")?);
            }
            "--tolerance" => {
                let v = it.next().ok_or("--tolerance needs a percentage")?;
                tolerance_pct = v
                    .parse()
                    .map_err(|_| format!("bad --tolerance value {v:?}"))?;
            }
            other if !other.starts_with("--") && out_path.is_none() => {
                out_path = Some(other.to_string());
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Args {
        out_path: out_path.unwrap_or_else(|| {
            let (y, m, d) = today_utc();
            format!("BENCH_{y:04}-{m:02}-{d:02}.json")
        }),
        baseline,
        tolerance_pct,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut c = Criterion::default();
    eprintln!("== layer_forward ==");
    perf::layer_forward_suite(&mut c);
    eprintln!("== attention ==");
    perf::attention_suite(&mut c);
    eprintln!("== sampling ==");
    perf::sampling_suite(&mut c);
    eprintln!("== full_pipeline ==");
    perf::full_pipeline_suite(&mut c);
    eprintln!("== serve_throughput ==");
    perf::serve_throughput_suite(&mut c);
    eprintln!("== sweep_throughput ==");
    perf::sweep_throughput_suite(&mut c);
    eprintln!("== datagen_enumerate ==");
    perf::datagen_enumerate_suite(&mut c);
    eprintln!("== simd_kernels ==");
    perf::simd_kernels_suite(&mut c);
    eprintln!("== quantized_infer ==");
    perf::quantized_infer_suite(&mut c);

    let mut f = std::fs::File::create(&args.out_path).expect("cannot create bench output file");
    for r in c.results() {
        writeln!(f, "{}", r.to_json()).expect("write failed");
    }
    eprintln!("wrote {} results to {}", c.results().len(), args.out_path);

    let Some(baseline_path) = args.baseline else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read baseline {baseline_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = parse_bench_lines(&baseline_text);
    let current: Vec<BenchEntry> = c
        .results()
        .iter()
        .map(|r| BenchEntry {
            group: r.group.clone(),
            name: r.name.clone(),
            ns_per_iter: r.ns_per_iter,
        })
        .collect();
    let report = compare(&baseline, &current, args.tolerance_pct);
    eprintln!("\n== comparison vs {baseline_path} ==\n{report}");
    if report.passed() {
        eprintln!("bench-regression gate: PASS");
        ExitCode::SUCCESS
    } else {
        let mut names: Vec<String> = report
            .regressed_groups()
            .iter()
            .map(|g| g.group.clone())
            .collect();
        names.extend(
            report
                .missing_groups
                .iter()
                .map(|g| format!("{g} (missing from fresh run)")),
        );
        eprintln!("bench-regression gate: FAIL ({})", names.join(", "));
        ExitCode::FAILURE
    }
}
