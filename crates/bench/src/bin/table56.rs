//! Regenerates Tables V and VI (shared training run).
fn main() {
    let (preset, seed) = cirgps_bench::parse_cli();
    let cmp = cirgps_bench::main_comparison(preset, seed);
    println!("{}", cirgps_bench::table5(&cmp));
    println!("{}", cirgps_bench::table6(&cmp));
}
