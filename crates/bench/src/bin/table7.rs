//! Regenerates Table 7 of the paper (see DESIGN.md experiment index).
fn main() {
    let (preset, seed) = cirgps_bench::parse_cli();
    println!("{}", cirgps_bench::table7(preset, seed));
}
