//! Runs every table and figure in sequence, printing a full
//! EXPERIMENTS-style report.
fn main() {
    let (preset, seed) = cirgps_bench::parse_cli();
    eprintln!("== running all experiments at {preset:?}, seed {seed} ==");
    println!("{}", cirgps_bench::table2(preset, seed));
    println!("{}", cirgps_bench::table3(preset, seed));
    println!("{}", cirgps_bench::table4(preset, seed));
    let cmp = cirgps_bench::main_comparison(preset, seed);
    println!("{}", cirgps_bench::table5(&cmp));
    println!("{}", cirgps_bench::table6(&cmp));
    println!("{}", cirgps_bench::table7(preset, seed));
    println!("{}", cirgps_bench::table8(preset, seed));
    println!("{}", cirgps_bench::fig4(preset, seed, &cmp));
}
