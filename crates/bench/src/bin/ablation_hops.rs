//! Extension ablation (DESIGN.md): the paper argues 1-hop enclosing
//! subgraphs are the right cost/quality point for link tasks (γ-decaying
//! theory); this harness sweeps h ∈ {1, 2} and subgraph size caps to
//! quantify the trade-off on our data.

use ams_datagen::DesignKind;
use circuitgps::{evaluate_link, prepare_link_dataset, pretrain_link, CircuitGps, TrainConfig};
use cirgps_bench::{default_model, DesignData, Scale};
use graph_pe::PeKind;
use subgraph_sample::{CapNormalizer, DatasetConfig, XcNormalizer};

fn main() {
    let (preset, seed) = cirgps_bench::parse_cli();
    let scale = Scale::for_preset(preset);
    let train_d = DesignData::load(DesignKind::Ssram, preset, seed);
    let test_d = DesignData::load(DesignKind::DigitalClkGen, preset, seed);
    let xcn = XcNormalizer::fit(&[&train_d.graph]);
    let cap = CapNormalizer::paper_range();

    let mut rows = Vec::new();
    for (hops, max_nodes) in [(1u32, 2048usize), (1, 64), (2, 2048), (2, 256)] {
        let cfg = DatasetConfig {
            hops,
            max_nodes,
            max_per_type: scale.max_per_type,
            seed,
            ..Default::default()
        };
        let t0 = std::time::Instant::now();
        let train_ds = train_d.link_dataset(&cfg);
        let test_ds = test_d.link_dataset(&DatasetConfig {
            seed: seed ^ 1,
            ..cfg
        });
        let sampling_secs = t0.elapsed().as_secs_f64();

        let train = prepare_link_dataset(&train_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
        let test = prepare_link_dataset(&test_ds, PeKind::Dspd, &xcn, |c| cap.encode(c));
        let mut model = CircuitGps::new(default_model(PeKind::Dspd, seed));
        let hist = pretrain_link(
            &mut model,
            &train,
            &TrainConfig {
                epochs: scale.epochs,
                seed,
                ..Default::default()
            },
        )
        .expect("training diverged");
        let m = evaluate_link(&model, &test);
        rows.push(vec![
            format!("{hops}"),
            format!("{max_nodes}"),
            format!("{:.1}", train_ds.mean_subgraph_nodes),
            format!("{:.3}", m.accuracy),
            format!("{:.3}", m.auc),
            format!("{:.1}", sampling_secs),
            format!("{:.1}", hist.seconds),
        ]);
    }
    println!(
        "### Hop-count / size-cap ablation (extension; paper argues h = 1 via γ-decaying theory)\n\n{}",
        cirgps_bench::markdown_table(
            &["h", "max nodes", "mean N/G", "Acc.", "AUC", "sample(s)", "train(s)"],
            &rows
        )
    );
}
