//! Criterion benchmark suites shared between `cargo bench` harnesses and
//! the `bench_json` snapshot binary.
//!
//! Each suite is a plain function over `&mut Criterion`, so the
//! `benches/*.rs` harnesses stay one-liners and `bench_json` can run the
//! same measurements in-process and serialize them to a
//! `BENCH_<date>.json` trajectory file.

use ams_datagen::{DesignKind, SizePreset};
use circuitgps::{prepare_link_dataset, CircuitGps, ModelConfig, PreparedSample};
use cirgps_nn::{GradStore, Tape};
use criterion::{BenchmarkId, Criterion};
use graph_pe::{compute_pe, PeKind};
use subgraph_sample::{CapNormalizer, DatasetConfig, SamplerConfig, SubgraphSampler, XcNormalizer};

use crate::{default_model, layer_ablation_configs, DesignData};

/// Tables III/VII "Time" column driver: forward+backward cost of one
/// training step for each GPS-layer configuration, at sub-batch sizes
/// 1/4/8 (one packed tape per sub-batch — the training loop's unit of
/// work). The size-8 rows keep their historical names so committed
/// `BENCH_*.json` baselines stay comparable.
pub fn layer_forward_suite(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::DigitalClkGen, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig {
        max_per_type: 30,
        ..Default::default()
    });
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |v| cap.encode(v));

    let mut group = c.benchmark_group("table3_layer_step");
    group.sample_size(10);
    for (mpnn_name, attn_name, mpnn, attn) in layer_ablation_configs() {
        let cfg = ModelConfig {
            mpnn,
            attn,
            ..default_model(PeKind::Dspd, 7)
        };
        let model = CircuitGps::new(cfg);
        for bs in [1usize, 4, 8] {
            let batch: Vec<&PreparedSample> = samples.iter().take(bs).collect();
            let label = if bs == 8 {
                format!("{mpnn_name}+{attn_name}")
            } else {
                format!("{mpnn_name}+{attn_name}/bs{bs}")
            };
            group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, model| {
                b.iter(|| {
                    let mut grads = GradStore::new(model.store());
                    let mut tape = Tape::new(model.store(), true, 0);
                    let loss = model.loss_link_batch(&mut tape, &batch);
                    tape.backward(loss, &mut grads);
                    std::hint::black_box(&grads);
                })
            });
        }
    }
    group.finish();
}

/// Attention-only microbench: forward+backward of the fused
/// block-diagonal attention ops over one packed sub-batch (8 blocks of
/// 96 nodes), isolated from the rest of the GPS layer. This is the op
/// the block-diagonal rewrite targets, so regressions here are visible
/// without the MPNN/MLP costs averaged in.
pub fn attention_suite(c: &mut Criterion) {
    use cirgps_nn::{MultiHeadAttention, ParamStore, PerformerAttention, Tensor};
    use rand::{Rng, SeedableRng};
    use std::sync::Arc;

    const BLOCK_N: usize = 96;
    const BLOCKS: usize = 8;
    const DIM: usize = 32;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, "mha", DIM, 4, &mut rng);
    let perf = PerformerAttention::new(&mut store, "perf", DIM, 4, 32, &mut rng);
    let n = BLOCK_N * BLOCKS;
    let x = Tensor::from_vec(
        n,
        DIM,
        (0..n * DIM).map(|_| rng.gen_range(-1.0..1.0)).collect(),
    );
    let blocks: Arc<Vec<(usize, usize)>> =
        Arc::new((0..BLOCKS).map(|b| (b * BLOCK_N, BLOCK_N)).collect());
    let targets = vec![0.1f32; n * DIM];

    let mut group = c.benchmark_group("attention_micro");
    group.sample_size(10);
    group.bench_function("mha_block_diag_fwd_bwd/pack8x96", |b| {
        b.iter(|| {
            let mut grads = GradStore::new(&store);
            let mut tape = Tape::new(&store, true, 0);
            let xv = tape.input(x.clone());
            let y = mha.forward_blocks(&mut tape, xv, blocks.clone());
            let loss = tape.mse_loss(y, &targets);
            tape.backward(loss, &mut grads);
            std::hint::black_box(&grads);
        })
    });
    group.bench_function("performer_block_diag_fwd_bwd/pack8x96", |b| {
        b.iter(|| {
            let mut grads = GradStore::new(&store);
            let mut tape = Tape::new(&store, true, 0);
            let xv = tape.input(x.clone());
            let y = perf.forward_blocks(&mut tape, xv, blocks.clone());
            let loss = tape.mse_loss(y, &targets);
            tape.backward(loss, &mut grads);
            std::hint::black_box(&grads);
        })
    });
    group.bench_function("mha_infer_blocks/pack8x96", |b| {
        b.iter(|| std::hint::black_box(mha.infer_blocks(&store, &x, &blocks)).recycle())
    });
    group.finish();
}

/// Serving-daemon throughput driver: the dynamic micro-batcher of
/// `cirgps-serve` exercised in-process (no TCP), with real scheduler
/// worker threads draining the queue into the tape-free engine.
///
/// Two shapes bracket the serving workload:
/// * `singleton_requests/64` — 64 concurrent one-query submissions, the
///   interactive design-loop pattern the batcher exists for; per-query
///   cost approaches the batched engine's because the queue coalesces
///   them (`ns_per_iter / 64` is the per-query number).
/// * `one_request/64` — a single 64-query submission (bulk screening),
///   the lower bound where batching needs no luck.
pub fn serve_throughput_suite(c: &mut Criterion) {
    use cirgps_serve::{ServeConfig, Server, TaskKind};
    use std::time::Duration;

    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig {
        max_per_type: 30,
        ..Default::default()
    });
    let pairs: Vec<(u32, u32)> = ds
        .samples
        .iter()
        .map(|s| (s.link.a, s.link.b))
        .take(64)
        .collect();
    let model = CircuitGps::new(default_model(PeKind::Dspd, 7));
    let workers = 2;
    let server = Server::new(
        model,
        d.graph.clone(),
        d.design.name.clone(),
        ServeConfig {
            max_batch: 32,
            max_wait: Duration::from_micros(200),
            workers,
            queue_capacity: 4096,
            ..ServeConfig::default()
        },
    );

    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                let mut session = server.session();
                server.engine().run_worker(&mut session);
            });
        }
        let mut group = c.benchmark_group("serve_throughput");
        group.sample_size(10);
        group.bench_function("singleton_requests/64", |b| {
            b.iter(|| {
                let slots: Vec<_> = pairs
                    .iter()
                    .map(|&p| {
                        server
                            .engine()
                            .submit(TaskKind::Link, &[p])
                            .expect("queue sized for the fleet")
                    })
                    .collect();
                for slot in slots {
                    std::hint::black_box(slot.wait());
                }
            })
        });
        group.bench_function("one_request/64", |b| {
            b.iter(|| {
                let slot = server
                    .engine()
                    .submit(TaskKind::Link, &pairs)
                    .expect("queue sized for the batch");
                std::hint::black_box(slot.wait());
            })
        });
        group.finish();
        server.engine().shutdown();
    });
}

/// Full-chip sweep planner driver: amortized per-pair cost of
/// [`circuitgps::sweep_pairs`] over planner-enumerated candidate pairs
/// at three fleet sizes. One iteration sweeps all `n` pairs end to end
/// (extract → dedup → batch forward → fan out), so the amortized
/// per-pair number is `ns_per_iter / n`. Same design, model and sampler
/// as `sample_pe_predict_end_to_end`, whose per-pair time is the
/// un-amortized baseline the planner must beat by ≥3× at the 10k size
/// (see docs/sweep.md).
pub fn sweep_throughput_suite(c: &mut Criterion) {
    use circuitgps::{sweep_pairs, CandidatePairs, SweepConfig, SweepTask};

    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let model = CircuitGps::new(default_model(PeKind::Dspd, 7));
    let all: Vec<(u32, u32)> = CandidatePairs::new(&d.graph, 0, 10_000).collect();
    assert!(
        all.len() == 10_000,
        "TIMING tiny should enumerate >=10k candidates, got {}",
        all.len()
    );
    let cfg = SweepConfig {
        task: SweepTask::Link,
        sampler: SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        },
        chunk: 4096,
        threads: 1,
        dedup: true,
    };

    let mut group = c.benchmark_group("sweep_throughput");
    group.sample_size(10);
    for n in [100usize, 1000, 10_000] {
        let pairs = &all[..n];
        group.bench_function(format!("amortized_pairs/{n}"), |b| {
            b.iter(|| {
                let mut acc = 0f32;
                let mut emit = |_: &[(u32, u32)], vs: &[f32]| {
                    acc += vs.iter().sum::<f32>();
                    true
                };
                let stats = sweep_pairs(
                    &model,
                    &xcn,
                    &d.graph,
                    pairs.iter().copied(),
                    &cfg,
                    &mut emit,
                );
                std::hint::black_box((acc, stats.pairs))
            })
        });
    }
    group.finish();
}

/// Grammar-enumerator throughput driver: how fast the composition
/// grammar turns into training data. `enumerate_terms` measures pure
/// enumeration (designs/sec over the default CLI window); the
/// `build_extract` tiers measure one design's full build + parasitic
/// extraction at three device-count scales, so nodes/sec is
/// `devices / ns_per_iter` and regressions in either the builder or the
/// extractor's spatial scans show up at the tier where they bite.
pub fn datagen_enumerate_suite(c: &mut Criterion) {
    use ams_datagen::enumerate::{build_term, enumerate_terms, term_extract_seed};
    use ams_datagen::{extract_parasitics, ExtractConfig};

    let mut group = c.benchmark_group("datagen_enumerate");
    group.sample_size(10);

    group.bench_function("enumerate_terms/4000", |b| {
        b.iter(|| std::hint::black_box(enumerate_terms(None, 0, 4000).len()))
    });

    for (label, lo, hi) in [
        ("1k", 900u64, 1_100),
        ("10k", 9_000, 11_000),
        ("100k", 90_000, 120_000),
    ] {
        let terms = enumerate_terms(None, lo, hi);
        let term = terms
            .first()
            .unwrap_or_else(|| panic!("no terms in window [{lo}, {hi}]"))
            .clone();
        let cfg = ExtractConfig {
            seed: term_extract_seed(7, &term),
            ..ExtractConfig::default()
        };
        group.bench_function(format!("build_extract/{label}"), |b| {
            b.iter(|| {
                let d = build_term(&term, 7).expect("enumerated term must build");
                let spf = extract_parasitics(&d, &cfg);
                std::hint::black_box((d.netlist.num_devices(), spf.len()))
            })
        });
    }
    group.finish();
}

/// Table IV driver: enclosing-subgraph sampling throughput (the paper's
/// sampling step is the dataset-construction bottleneck at scale).
pub fn sampling_suite(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_subgraph_sampling");
    for kind in [DesignKind::TimingControl, DesignKind::Array128x32] {
        let d = DesignData::load(kind, SizePreset::Tiny, 7);
        // Pick pin/net pairs spread over the graph.
        let n = d.graph.num_nodes() as u32;
        let pairs: Vec<(u32, u32)> = (0..64)
            .map(|i| ((i * 37) % n, (i * 61 + 13) % n))
            .filter(|(a, b)| a != b)
            .collect();
        group.bench_with_input(
            BenchmarkId::new("one_hop_pairs", kind.paper_name()),
            &d,
            |b, d| {
                let mut sampler = SubgraphSampler::new(
                    &d.graph,
                    SamplerConfig {
                        hops: 1,
                        max_nodes: 2048,
                    },
                );
                b.iter(|| {
                    for &(x, y) in &pairs {
                        std::hint::black_box(sampler.enclosing_subgraph(x, y));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("two_hop_nodes", kind.paper_name()),
            &d,
            |b, d| {
                let mut sampler = SubgraphSampler::new(
                    &d.graph,
                    SamplerConfig {
                        hops: 2,
                        max_nodes: 2048,
                    },
                );
                b.iter(|| {
                    for &(x, _) in &pairs {
                        std::hint::black_box(sampler.node_subgraph(x));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Tables V/VI/VIII driver: end-to-end per-link inference latency
/// (sample → PE → model forward), the number that governs how fast a
/// trained CircuitGPS screens coupling candidates on a new design.
pub fn full_pipeline_suite(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig {
        max_per_type: 30,
        ..Default::default()
    });
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |v| cap.encode(v));
    let model = CircuitGps::new(default_model(PeKind::Dspd, 7));

    let mut group = c.benchmark_group("table5_inference");
    group.bench_function("predict_link_per_sample", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            std::hint::black_box(model.predict_link(s))
        })
    });
    // Tape-free batched engine (block-diagonal attention). One iteration
    // predicts `bs` samples, so per-sample time is `ns_per_iter / bs`.
    // Batches are rotating windows over the dataset so the sample mix
    // matches the per-sample benchmarks above.
    let windows = |bs: usize| -> Vec<Vec<&PreparedSample>> {
        (0..samples.len())
            .map(|start| {
                (0..bs)
                    .map(|j| &samples[(start + j) % samples.len()])
                    .collect()
            })
            .collect()
    };
    for bs in [1usize, 8, 32] {
        let batches = windows(bs);
        group.bench_function(format!("predict_link_batched/{bs}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let batch = &batches[i % batches.len()];
                i += 1;
                std::hint::black_box(model.predict_link_batch(batch))
            })
        });
    }
    {
        let batches = windows(32);
        group.bench_function("predict_reg_batched/32", |b| {
            let mut i = 0;
            b.iter(|| {
                let batch = &batches[i % batches.len()];
                i += 1;
                std::hint::black_box(model.predict_reg_batch(batch))
            })
        });
    }
    group.bench_function("predict_reg_per_sample", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            std::hint::black_box(model.predict_reg(s))
        })
    });
    group.bench_function("sample_pe_predict_end_to_end", |b| {
        let pairs: Vec<(u32, u32)> = ds
            .samples
            .iter()
            .map(|s| (s.link.a, s.link.b))
            .take(16)
            .collect();
        let mut sampler = SubgraphSampler::new(
            &d.graph,
            SamplerConfig {
                hops: 1,
                max_nodes: 2048,
            },
        );
        let mut i = 0;
        b.iter(|| {
            let (a, bb) = pairs[i % pairs.len()];
            i += 1;
            let sub = sampler.enclosing_subgraph(a, bb);
            let _pe = compute_pe(&sub, PeKind::Dspd);
            let prepared = PreparedSample::new(sub, PeKind::Dspd, &xcn, 1.0, 0.0);
            std::hint::black_box(model.predict_link(&prepared))
        })
    });
    group.finish();
}

/// Per-backend microkernel sweep: the hot GEMM widths, the elementwise
/// sweeps and the dequantizing int8 GEMM, each timed on every backend
/// this CPU can execute (scalar always, AVX2/AVX-512 where the feature
/// probes pass). Bench ids carry the backend (`gemm_n32/avx2`), so a
/// trajectory file shows the dispatch win directly and a regression in
/// either path is attributable.
pub fn simd_kernels_suite(c: &mut Criterion) {
    use cirgps_nn::simd::ops;
    use cirgps_nn::{Backend, QuantMatrix, Tensor};

    const M: usize = 64;
    const K: usize = 128;
    let fill = |len: usize, seed: u64| -> Vec<f32> {
        (0..len)
            .map(|i| ((i as u64).wrapping_mul(seed * 2 + 1) % 97) as f32 * 0.04 - 1.9)
            .collect()
    };
    let backends: Vec<Backend> = Backend::ALL
        .iter()
        .copied()
        .filter(|b| b.available())
        .collect();

    let mut group = c.benchmark_group("simd_kernels");
    group.sample_size(10);
    for &backend in &backends {
        for n in [8usize, 32, 64] {
            let a = fill(M * K, 7);
            let b_mat = fill(K * n, 11);
            let w = Tensor::from_vec(K, n, fill(K * n, 11));
            let q = QuantMatrix::quantize(&w);
            group.bench_function(format!("gemm_n{n}/{backend}"), |b| {
                let mut out = vec![0.0f32; M * n];
                b.iter(|| {
                    out.iter_mut().for_each(|v| *v = 0.0);
                    ops::gemm(backend, &a, &b_mat, &mut out, M, K, n);
                    std::hint::black_box(&out);
                })
            });
            group.bench_function(format!("gemm_quant_n{n}/{backend}"), |b| {
                let mut out = vec![0.0f32; M * n];
                b.iter(|| {
                    out.iter_mut().for_each(|v| *v = 0.0);
                    ops::gemm_quant(backend, &a, &q, &mut out, M);
                    std::hint::black_box(&out);
                })
            });
        }
        let xs = fill(4096, 13);
        group.bench_function(format!("sigmoid_sweep_4k/{backend}"), |b| {
            let mut buf = xs.clone();
            b.iter(|| {
                buf.copy_from_slice(&xs);
                ops::sigmoid_sweep(backend, &mut buf);
                std::hint::black_box(&buf);
            })
        });
        let x = Tensor::from_vec(256, 64, fill(256 * 64, 17));
        group.bench_function(format!("softmax_rows_256x64/{backend}"), |b| {
            b.iter(|| std::hint::black_box(ops::softmax_rows(backend, &x, 0.125)))
        });
    }
    group.finish();
}

/// int8 weight-only quantized inference vs f32, through the full batched
/// tape-free engine — the number the `--quantize` export flag buys (or
/// costs) in production serving. Same rotating batch windows as
/// `table5_inference`, so `/f32` here is comparable to
/// `predict_link_batched/32` there.
pub fn quantized_infer_suite(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig {
        max_per_type: 30,
        ..Default::default()
    });
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |v| cap.encode(v));
    let windows: Vec<Vec<&PreparedSample>> = (0..samples.len())
        .map(|start| {
            (0..32)
                .map(|j| &samples[(start + j) % samples.len()])
                .collect()
        })
        .collect();

    let mut group = c.benchmark_group("quantized_infer");
    group.sample_size(10);
    for int8 in [false, true] {
        let mut model = CircuitGps::new(default_model(PeKind::Dspd, 7));
        if int8 {
            assert!(model.store_mut().quantize_int8() > 0);
        }
        let label = if int8 { "int8" } else { "f32" };
        group.bench_function(format!("predict_link_batched32/{label}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let batch = &windows[i % windows.len()];
                i += 1;
                std::hint::black_box(model.predict_link_batch(batch))
            })
        });
    }
    group.finish();
}
