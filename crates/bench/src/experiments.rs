//! End-to-end experiment runners, one per table/figure of the paper.
//!
//! Every runner returns formatted markdown so the `table*`/`fig4`
//! binaries stay trivial. Scale is controlled by [`SizePreset`]; the
//! `small` default reproduces the *shape* of each result on a laptop-class
//! CPU, `paper` approaches the paper's dataset sizes.

use std::time::Instant;

use ams_datagen::{DesignKind, SizePreset};
use circuitgps::{
    evaluate_link, evaluate_regression, finetune_regression, prepare_link_dataset,
    prepare_node_dataset, pretrain_link, AttnKind, CircuitGps, FinetuneMode, LinkMetrics,
    ModelConfig, MpnnKind, PreparedSample, RegMetrics, TrainConfig,
};
use cirgps_baselines::{
    Baseline, BaselineConfig, BaselineKind, BaselineTrainConfig, FullGraphInputs, NodeTask,
    PairTask,
};
use graph_pe::{compute_pe, PeKind};
use rand::rngs::StdRng;
use rand::SeedableRng;
use subgraph_sample::{generate_negatives, CapNormalizer, DatasetConfig, LinkSet, XcNormalizer};

use crate::data::{fit_normalizer, markdown_table, test_designs, training_designs, DesignData};

/// Per-preset experiment scale.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Positive links sampled per type per design.
    pub max_per_type: usize,
    /// Training epochs for CircuitGPS.
    pub epochs: usize,
    /// Full-batch epochs for baselines.
    pub baseline_epochs: usize,
    /// Node-regression samples per design.
    pub node_samples: usize,
    /// Input vectors for the energy simulation.
    pub energy_vectors: usize,
    /// Cap on couplings predicted for Fig. 4 (0 = all).
    pub fig4_max_couplings: usize,
}

impl Scale {
    /// Scale for a preset.
    pub fn for_preset(preset: SizePreset) -> Scale {
        match preset {
            SizePreset::Tiny => Scale {
                max_per_type: 60,
                epochs: 4,
                baseline_epochs: 30,
                node_samples: 150,
                energy_vectors: 24,
                fig4_max_couplings: 400,
            },
            SizePreset::Small => Scale {
                max_per_type: 150,
                epochs: 4,
                baseline_epochs: 30,
                node_samples: 400,
                energy_vectors: 32,
                fig4_max_couplings: 1500,
            },
            SizePreset::Paper => Scale {
                max_per_type: 1200,
                epochs: 8,
                baseline_epochs: 60,
                node_samples: 2500,
                energy_vectors: 96,
                fig4_max_couplings: 0,
            },
        }
    }
}

/// Default CircuitGPS architecture (the paper's GatedGCN + Performer
/// configuration from Table II).
pub fn default_model(pe: PeKind, seed: u64) -> ModelConfig {
    ModelConfig {
        hidden_dim: 32,
        num_layers: 3,
        heads: 4,
        mpnn: MpnnKind::GatedGcn,
        attn: AttnKind::Performer { features: 32 },
        pe,
        pe_dim: 8,
        dropout: 0.1,
        seed,
    }
}

fn dataset_cfg(scale: &Scale, seed: u64) -> DatasetConfig {
    DatasetConfig {
        max_per_type: scale.max_per_type,
        seed,
        ..Default::default()
    }
}

fn train_cfg(scale: &Scale, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs: scale.epochs,
        seed,
        ..Default::default()
    }
}

fn fmt_m(m: &LinkMetrics) -> [String; 3] {
    [
        format!("{:.3}", m.accuracy),
        format!("{:.3}", m.f1),
        format!("{:.3}", m.auc),
    ]
}

fn fmt_r(m: &RegMetrics) -> [String; 3] {
    [
        format!("{:.3}", m.mae),
        format!("{:.3}", m.rmse),
        format!("{:.3}", m.r2),
    ]
}

/// Builds prepared link samples for several designs under one PE.
fn prepared_links(
    designs: &[DesignData],
    scale: &Scale,
    pe: PeKind,
    xcn: &XcNormalizer,
    cap_norm: &CapNormalizer,
    seed: u64,
) -> Vec<PreparedSample> {
    let mut out = Vec::new();
    for d in designs {
        let ds = d.link_dataset(&dataset_cfg(scale, seed));
        out.extend(prepare_link_dataset(&ds, pe, xcn, |cap| {
            cap_norm.encode(cap)
        }));
    }
    out
}

/// Table II: PE comparison on link prediction (train SSRAM, zero-shot
/// test on DIGITAL_CLK_GEN), plus per-graph PE computation time.
pub fn table2(preset: SizePreset, seed: u64) -> String {
    let scale = Scale::for_preset(preset);
    let train_d = DesignData::load(DesignKind::Ssram, preset, seed);
    let test_d = DesignData::load(DesignKind::DigitalClkGen, preset, seed);
    let xcn = fit_normalizer(std::slice::from_ref(&train_d));
    let cap_norm = CapNormalizer::paper_range();

    let train_ds = train_d.link_dataset(&dataset_cfg(&scale, seed));
    let test_ds = test_d.link_dataset(&dataset_cfg(&scale, seed ^ 1));

    let mut rows = Vec::new();
    for pe in PeKind::TABLE2 {
        let train = prepare_link_dataset(&train_ds, pe, &xcn, |c| cap_norm.encode(c));
        let test = prepare_link_dataset(&test_ds, pe, &xcn, |c| cap_norm.encode(c));

        // Time/G: PE computation time per subgraph (the paper's column).
        let t0 = Instant::now();
        for s in test_ds.samples.iter() {
            std::hint::black_box(compute_pe(&s.subgraph, pe));
        }
        let per_graph = t0.elapsed().as_secs_f64() / test_ds.samples.len().max(1) as f64;

        let mut model = CircuitGps::new(default_model(pe, seed));
        pretrain_link(&mut model, &train, &train_cfg(&scale, seed)).expect("training diverged");
        let m = evaluate_link(&model, &test);
        let [acc, f1, auc] = fmt_m(&m);
        let time_cell = if matches!(pe, PeKind::None | PeKind::Xc) {
            "N/A".to_string()
        } else {
            format!("{:.4}", per_graph)
        };
        rows.push(vec![pe.paper_name().to_string(), acc, f1, auc, time_cell]);
    }
    format!(
        "### Table II: Comparison of Different PEs in Link Prediction\n\n{}",
        markdown_table(&["PE", "Acc.", "F1", "AUC", "Time/G (s)"], &rows)
    )
}

/// The five GPS-layer configurations of Tables III and VII.
pub fn layer_ablation_configs() -> Vec<(&'static str, &'static str, MpnnKind, AttnKind)> {
    vec![
        (
            "None",
            "Performer",
            MpnnKind::None,
            AttnKind::Performer { features: 32 },
        ),
        ("None", "Transformer", MpnnKind::None, AttnKind::Transformer),
        (
            "GatedGCN",
            "Performer",
            MpnnKind::GatedGcn,
            AttnKind::Performer { features: 32 },
        ),
        (
            "GatedGCN",
            "Transformer",
            MpnnKind::GatedGcn,
            AttnKind::Transformer,
        ),
        ("GatedGCN", "None", MpnnKind::GatedGcn, AttnKind::None),
    ]
}

/// Table III: GPS-layer ablation on link prediction.
pub fn table3(preset: SizePreset, seed: u64) -> String {
    let scale = Scale::for_preset(preset);
    let train_d = DesignData::load(DesignKind::Ssram, preset, seed);
    let test_d = DesignData::load(DesignKind::DigitalClkGen, preset, seed);
    let xcn = fit_normalizer(std::slice::from_ref(&train_d));
    let cap_norm = CapNormalizer::paper_range();
    let train_ds = train_d.link_dataset(&dataset_cfg(&scale, seed));
    let test_ds = test_d.link_dataset(&dataset_cfg(&scale, seed ^ 1));
    let train = prepare_link_dataset(&train_ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c));
    let test = prepare_link_dataset(&test_ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c));

    let mut rows = Vec::new();
    for (mpnn_name, attn_name, mpnn, attn) in layer_ablation_configs() {
        let cfg = ModelConfig {
            mpnn,
            attn,
            ..default_model(PeKind::Dspd, seed)
        };
        let mut model = CircuitGps::new(cfg);
        let hist =
            pretrain_link(&mut model, &train, &train_cfg(&scale, seed)).expect("training diverged");
        let m = evaluate_link(&model, &test);
        let [acc, f1, auc] = fmt_m(&m);
        rows.push(vec![
            mpnn_name.to_string(),
            attn_name.to_string(),
            acc,
            f1,
            auc,
            format!("{:.1}", hist.seconds),
            format!("{}", model.num_params()),
        ]);
    }
    format!(
        "### Table III: Ablation of GPS Layer Configurations on Link Prediction\n\n{}",
        markdown_table(
            &[
                "MPNN",
                "Attention",
                "Acc.",
                "F1",
                "AUC",
                "Time(s)",
                "#Param."
            ],
            &rows
        )
    )
}

/// Table IV: dataset statistics.
pub fn table4(preset: SizePreset, seed: u64) -> String {
    let scale = Scale::for_preset(preset);
    let mut rows = Vec::new();
    for kind in DesignKind::ALL {
        let d = DesignData::load(kind, preset, seed);
        let ds = d.link_dataset(&dataset_cfg(&scale, seed));
        let stats = d.stats();
        let raw_links: usize = ds.raw_counts.iter().sum();
        rows.push(vec![
            if kind.is_training() { "Train" } else { "Test" }.to_string(),
            kind.paper_name().to_string(),
            circuit_graph::human_count(stats.num_nodes),
            circuit_graph::human_count(stats.num_edges),
            circuit_graph::human_count(raw_links),
            format!("{:.0}", ds.mean_subgraph_nodes),
            format!("{:.0}", ds.mean_subgraph_edges),
        ]);
    }
    format!(
        "### Table IV: AMS Circuit Dataset Statistics\n\n{}",
        markdown_table(
            &["Split", "Dataset", "N", "NE", "#Links", "N/G1mn", "NE/G1mn"],
            &rows
        )
    )
}

/// Shared state for Tables V and VI (training is expensive; both tables
/// reuse the same pre-trained model and baselines).
pub struct MainComparison {
    /// Zero-shot link metrics per test design: `[paragraph, dlpl, cirgps]`.
    pub link_rows: Vec<[LinkMetrics; 3]>,
    /// Regression metrics per test design:
    /// `[paragraph, dlpl, scratch, head_ft, all_ft]`.
    pub reg_rows: Vec<[RegMetrics; 5]>,
    /// Test design names.
    pub names: Vec<String>,
    /// The all-parameters fine-tuned model (used by Fig. 4).
    pub model_all_ft: CircuitGps,
    /// Shared normalizers.
    pub xcn: XcNormalizer,
    /// Capacitance normalizer.
    pub cap_norm: CapNormalizer,
}

/// Runs the full training/evaluation for Tables V + VI.
pub fn main_comparison(preset: SizePreset, seed: u64) -> MainComparison {
    let scale = Scale::for_preset(preset);
    let train_designs_v = training_designs(preset, seed);
    let test_designs_v = test_designs(preset, seed);
    let xcn = fit_normalizer(&train_designs_v);
    let cap_norm = CapNormalizer::paper_range();

    // --- CircuitGPS datasets ---------------------------------------------
    let train = prepared_links(
        &train_designs_v,
        &scale,
        PeKind::Dspd,
        &xcn,
        &cap_norm,
        seed,
    );
    let tests: Vec<Vec<PreparedSample>> = test_designs_v
        .iter()
        .map(|d| {
            let ds = d.link_dataset(&dataset_cfg(&scale, seed ^ 1));
            prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c))
        })
        .collect();

    // --- Baseline inputs ---------------------------------------------------
    let mut rng = StdRng::seed_from_u64(seed);
    let make_pair_task = |d: &DesignData, rng: &mut StdRng| -> PairTask {
        let all = LinkSet::from_spf(&d.spf, &d.design.netlist, &d.graph, &d.map, (1e-21, 1e-15));
        let pos = all.balanced(all.balance_count().min(scale.max_per_type), rng);
        let neg = generate_negatives(&d.graph, &pos, &all, seed ^ 0xbb);
        let mut links = pos;
        links.extend(neg);
        PairTask::from_links(&links, |c| cap_norm.encode(c))
    };
    let train_graphs: Vec<(FullGraphInputs, PairTask)> = train_designs_v
        .iter()
        .map(|d| {
            (
                FullGraphInputs::new(&d.graph, &xcn),
                make_pair_task(d, &mut rng),
            )
        })
        .collect();
    let test_graphs: Vec<(FullGraphInputs, PairTask)> = test_designs_v
        .iter()
        .map(|d| {
            (
                FullGraphInputs::new(&d.graph, &xcn),
                make_pair_task(d, &mut rng),
            )
        })
        .collect();
    let bl_train: Vec<(&FullGraphInputs, &PairTask)> =
        train_graphs.iter().map(|(g, t)| (g, t)).collect();
    let bl_cfg = BaselineTrainConfig {
        epochs: scale.baseline_epochs,
        ..Default::default()
    };

    // --- Train the three main models ---------------------------------------
    eprintln!("[main] training ParaGraph (link)...");
    let mut paragraph = Baseline::new(
        BaselineKind::ParaGraph,
        BaselineConfig {
            seed: seed ^ 0xAA,
            ..Default::default()
        },
    );
    cirgps_baselines::train_link(&mut paragraph, &bl_train, &bl_cfg);
    eprintln!("[main] training DLPL-Cap (link)...");
    let mut dlpl = Baseline::new(
        BaselineKind::DlplCap,
        BaselineConfig {
            seed: seed ^ 0xD1,
            ..Default::default()
        },
    );
    cirgps_baselines::train_link(&mut dlpl, &bl_train, &bl_cfg);
    eprintln!(
        "[main] pre-training CircuitGPS ({} samples)...",
        train.len()
    );
    let mut cirgps = CircuitGps::new(default_model(PeKind::Dspd, seed));
    pretrain_link(&mut cirgps, &train, &train_cfg(&scale, seed)).expect("training diverged");

    let link_rows: Vec<[LinkMetrics; 3]> = test_designs_v
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let (g, task) = &test_graphs[i];
            [
                cirgps_baselines::evaluate_link(&paragraph, g, task),
                cirgps_baselines::evaluate_link(&dlpl, g, task),
                evaluate_link(&cirgps, &tests[i]),
            ]
        })
        .collect();

    // --- Regression ---------------------------------------------------------
    eprintln!("[main] training ParaGraph (regression)...");
    let mut paragraph_r = Baseline::new(
        BaselineKind::ParaGraph,
        BaselineConfig {
            seed: seed ^ 0xAB,
            ..Default::default()
        },
    );
    cirgps_baselines::train_regression(&mut paragraph_r, &bl_train, &bl_cfg);
    eprintln!("[main] training DLPL-Cap (regression)...");
    let mut dlpl_r = Baseline::new(
        BaselineKind::DlplCap,
        BaselineConfig {
            seed: seed ^ 0xD2,
            ..Default::default()
        },
    );
    cirgps_baselines::train_regression(&mut dlpl_r, &bl_train, &bl_cfg);

    eprintln!("[main] CircuitGPS regression from scratch...");
    let mut scratch = CircuitGps::new(default_model(PeKind::Dspd, seed ^ 2));
    finetune_regression(
        &mut scratch,
        &train,
        FinetuneMode::Scratch,
        &train_cfg(&scale, seed),
    )
    .expect("training diverged");

    eprintln!("[main] CircuitGPS head-only fine-tune...");
    let mut head_ft = CircuitGps::new(default_model(PeKind::Dspd, seed));
    let mut bytes = Vec::new();
    cirgps.save(&mut bytes).expect("checkpoint");
    head_ft.load(&bytes[..]).expect("load checkpoint");
    finetune_regression(
        &mut head_ft,
        &train,
        FinetuneMode::HeadOnly,
        &train_cfg(&scale, seed),
    )
    .expect("training diverged");

    eprintln!("[main] CircuitGPS all-parameters fine-tune...");
    let mut all_ft = CircuitGps::new(default_model(PeKind::Dspd, seed));
    all_ft.load(&bytes[..]).expect("load checkpoint");
    finetune_regression(
        &mut all_ft,
        &train,
        FinetuneMode::All,
        &train_cfg(&scale, seed),
    )
    .expect("training diverged");

    let reg_rows: Vec<[RegMetrics; 5]> = test_designs_v
        .iter()
        .enumerate()
        .map(|(i, _)| {
            let (g, task) = &test_graphs[i];
            [
                cirgps_baselines::evaluate_regression(&paragraph_r, g, task),
                cirgps_baselines::evaluate_regression(&dlpl_r, g, task),
                evaluate_regression(&scratch, &tests[i]),
                evaluate_regression(&head_ft, &tests[i]),
                evaluate_regression(&all_ft, &tests[i]),
            ]
        })
        .collect();

    MainComparison {
        link_rows,
        reg_rows,
        names: test_designs_v
            .iter()
            .map(|d| d.kind.paper_name().to_string())
            .collect(),
        model_all_ft: all_ft,
        xcn,
        cap_norm,
    }
}

/// Table V markdown from a [`MainComparison`].
pub fn table5(cmp: &MainComparison) -> String {
    let mut rows = Vec::new();
    for (mi, name) in ["ParaGraph", "DLPL-Cap", "CircuitGPS"].iter().enumerate() {
        let mut row = vec![name.to_string()];
        for dr in &cmp.link_rows {
            let [acc, f1, auc] = fmt_m(&dr[mi]);
            row.extend([acc, f1, auc]);
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Method".to_string())
        .chain(
            cmp.names
                .iter()
                .flat_map(|n| [format!("{n} Acc."), format!("{n} F1"), format!("{n} AUC")]),
        )
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "### Table V: Accuracy Comparison on Link Prediction (zero-shot)\n\n{}",
        markdown_table(&headers_ref, &rows)
    )
}

/// Table VI markdown from a [`MainComparison`].
pub fn table6(cmp: &MainComparison) -> String {
    let mut rows = Vec::new();
    let method_names = [
        "ParaGraph",
        "DLPL-Cap",
        "CircuitGPS",
        "CircuitGPS head-ft",
        "CircuitGPS all-ft",
    ];
    for (mi, name) in method_names.iter().enumerate() {
        let mut row = vec![name.to_string()];
        for dr in &cmp.reg_rows {
            let [mae, rmse, r2] = fmt_r(&dr[mi]);
            row.extend([mae, rmse, r2]);
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Method".to_string())
        .chain(
            cmp.names
                .iter()
                .flat_map(|n| [format!("{n} MAE"), format!("{n} RMSE"), format!("{n} R2")]),
        )
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "### Table VI: Error Comparison on Edge Regression (zero-shot / fine-tuned)\n\n{}",
        markdown_table(&headers_ref, &rows)
    )
}

/// Table VII: GPS-layer ablation on edge regression.
pub fn table7(preset: SizePreset, seed: u64) -> String {
    let scale = Scale::for_preset(preset);
    let train_d = DesignData::load(DesignKind::Ssram, preset, seed);
    let test_d = DesignData::load(DesignKind::DigitalClkGen, preset, seed);
    let xcn = fit_normalizer(std::slice::from_ref(&train_d));
    let cap_norm = CapNormalizer::paper_range();
    let train_ds = train_d.link_dataset(&dataset_cfg(&scale, seed));
    let test_ds = test_d.link_dataset(&dataset_cfg(&scale, seed ^ 1));
    let train = prepare_link_dataset(&train_ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c));
    let test = prepare_link_dataset(&test_ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c));

    let mut rows = Vec::new();
    for (mpnn_name, attn_name, mpnn, attn) in layer_ablation_configs() {
        let cfg = ModelConfig {
            mpnn,
            attn,
            ..default_model(PeKind::Dspd, seed)
        };
        let mut model = CircuitGps::new(cfg);
        let hist = finetune_regression(
            &mut model,
            &train,
            FinetuneMode::Scratch,
            &train_cfg(&scale, seed),
        )
        .expect("training diverged");
        let m = evaluate_regression(&model, &test);
        let [mae, rmse, r2] = fmt_r(&m);
        rows.push(vec![
            mpnn_name.to_string(),
            attn_name.to_string(),
            mae,
            rmse,
            r2,
            format!("{:.1}", hist.seconds),
            format!("{}", model.num_params()),
        ]);
    }
    format!(
        "### Table VII: Ablation of GPS Layer Configurations on Edge Regression\n\n{}",
        markdown_table(
            &[
                "MPNN",
                "Attention",
                "MAE",
                "RMSE",
                "R2",
                "Time(s)",
                "#Param."
            ],
            &rows
        )
    )
}

/// Table VIII: node-level ground-capacitance regression.
pub fn table8(preset: SizePreset, seed: u64) -> String {
    let scale = Scale::for_preset(preset);
    let train_designs_v = training_designs(preset, seed);
    let test_designs_v = test_designs(preset, seed);
    let xcn = fit_normalizer(&train_designs_v);
    let cap_norm = CapNormalizer::paper_range();

    // CircuitGPS: 2-hop single-anchor subgraphs, no negative injection.
    let mut train = Vec::new();
    for d in &train_designs_v {
        let ds = d.node_dataset(scale.node_samples, 2, seed);
        train.extend(prepare_node_dataset(&ds, PeKind::Dspd, &xcn, |c| {
            cap_norm.encode(c)
        }));
    }
    let tests: Vec<Vec<PreparedSample>> = test_designs_v
        .iter()
        .map(|d| {
            let ds = d.node_dataset(scale.node_samples, 2, seed ^ 1);
            prepare_node_dataset(&ds, PeKind::Dspd, &xcn, |c| cap_norm.encode(c))
        })
        .collect();
    eprintln!(
        "[table8] training CircuitGPS node regression ({} samples)...",
        train.len()
    );
    let mut cirgps = CircuitGps::new(default_model(PeKind::Dspd, seed));
    finetune_regression(
        &mut cirgps,
        &train,
        FinetuneMode::Scratch,
        &train_cfg(&scale, seed),
    )
    .expect("training diverged");

    // Baselines: node tasks over full graphs.
    let make_node_task = |d: &DesignData| -> NodeTask {
        let ds = d.node_dataset(scale.node_samples, 2, seed);
        NodeTask {
            nodes: ds.samples.iter().map(|s| s.node).collect(),
            targets: ds.samples.iter().map(|s| cap_norm.encode(s.cap)).collect(),
        }
    };
    let train_graphs: Vec<(FullGraphInputs, NodeTask)> = train_designs_v
        .iter()
        .map(|d| (FullGraphInputs::new(&d.graph, &xcn), make_node_task(d)))
        .collect();
    let test_graphs: Vec<(FullGraphInputs, NodeTask)> = test_designs_v
        .iter()
        .map(|d| (FullGraphInputs::new(&d.graph, &xcn), make_node_task(d)))
        .collect();
    let bl_train: Vec<(&FullGraphInputs, &NodeTask)> =
        train_graphs.iter().map(|(g, t)| (g, t)).collect();
    let bl_cfg = BaselineTrainConfig {
        epochs: scale.baseline_epochs,
        ..Default::default()
    };
    eprintln!("[table8] training baselines...");
    let mut paragraph = Baseline::new(
        BaselineKind::ParaGraph,
        BaselineConfig {
            seed: seed ^ 0xAC,
            ..Default::default()
        },
    );
    cirgps_baselines::train_node_regression(&mut paragraph, &bl_train, &bl_cfg);
    let mut dlpl = Baseline::new(
        BaselineKind::DlplCap,
        BaselineConfig {
            seed: seed ^ 0xD3,
            ..Default::default()
        },
    );
    cirgps_baselines::train_node_regression(&mut dlpl, &bl_train, &bl_cfg);

    let mut rows = Vec::new();
    for (name, which) in [("ParaGraph", 0), ("DLPL-Cap", 1), ("CircuitGPS", 2)] {
        let mut row = vec![name.to_string()];
        for (i, _) in test_designs_v.iter().enumerate() {
            let m = match which {
                0 => cirgps_baselines::evaluate_node_regression(
                    &paragraph,
                    &test_graphs[i].0,
                    &test_graphs[i].1,
                ),
                1 => cirgps_baselines::evaluate_node_regression(
                    &dlpl,
                    &test_graphs[i].0,
                    &test_graphs[i].1,
                ),
                _ => evaluate_regression(&cirgps, &tests[i]),
            };
            let [mae, rmse, r2] = fmt_r(&m);
            row.extend([mae, rmse, r2]);
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("Method".to_string())
        .chain(test_designs_v.iter().flat_map(|d| {
            let n = d.kind.paper_name();
            [format!("{n} MAE"), format!("{n} RMSE"), format!("{n} R2")]
        }))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    format!(
        "### Table VIII: Error Comparison on Node Regression (ground capacitance)\n\n{}",
        markdown_table(&headers_ref, &rows)
    )
}

/// Fig. 4: switch-level energy with ground-truth vs predicted coupling
/// capacitance; returns the markdown plus the MAPE.
pub fn fig4(preset: SizePreset, seed: u64, cmp: &MainComparison) -> String {
    let scale = Scale::for_preset(preset);
    let test_designs_v = test_designs(preset, seed);
    let mut rows = Vec::new();
    let mut gts = Vec::new();
    let mut preds = Vec::new();

    for d in &test_designs_v {
        eprintln!("[fig4] predicting couplings for {}...", d.kind.paper_name());
        // Predict a capacitance for every resolvable coupling entry.
        let limit = if scale.fig4_max_couplings == 0 {
            usize::MAX
        } else {
            scale.fig4_max_couplings
        };
        let mut link_edges = Vec::new();
        let mut entries = Vec::new(); // (spf index, a, b)
        for (ci, c) in d.spf.coupling_caps.iter().enumerate() {
            if entries.len() >= limit {
                break;
            }
            let (Some(a), Some(b)) = (
                d.map.resolve(&d.design.netlist, &c.a),
                d.map.resolve(&d.design.netlist, &c.b),
            ) else {
                continue;
            };
            if a == b {
                continue;
            }
            let Some(ty) =
                circuit_graph::EdgeType::link_between(d.graph.node_type(a), d.graph.node_type(b))
            else {
                continue;
            };
            link_edges.push(circuit_graph::Edge { a, b, ty });
            entries.push((ci, a, b));
        }
        let aug = d.graph.with_injected_links(&link_edges);
        let sampler_cfg = subgraph_sample::SamplerConfig {
            hops: 1,
            max_nodes: 2048,
        };
        use rayon::prelude::*;
        let samples: Vec<(usize, PreparedSample)> = entries
            .par_chunks(64)
            .flat_map_iter(|chunk| {
                let mut sampler = subgraph_sample::SubgraphSampler::new(&aug, sampler_cfg);
                chunk
                    .iter()
                    .map(|&(ci, a, b)| {
                        let sub = sampler.enclosing_subgraph(a, b);
                        (
                            ci,
                            PreparedSample::new(sub, PeKind::Dspd, &cmp.xcn, 1.0, 0.0),
                        )
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        let outputs: Vec<(usize, f64)> = samples
            .par_iter()
            .map(|(ci, s)| (*ci, cmp.cap_norm.decode(cmp.model_all_ft.predict_reg(s))))
            .collect();
        let predicted: std::collections::HashMap<usize, f64> = outputs.into_iter().collect();

        // Assemble per-net capacitances (gt vs predicted couplings).
        let caps_gt = mini_spice::net_capacitances(&d.design.netlist, &d.spf);
        let mut idx = 0usize;
        let caps_pred = mini_spice::net_capacitances_with(&d.design.netlist, &d.spf, |c| {
            let v = predicted.get(&idx).copied().unwrap_or(c.value);
            idx += 1;
            v
        });

        let e_gt = mini_spice::simulate_energy(
            &d.design.netlist,
            &caps_gt,
            0.9,
            scale.energy_vectors,
            seed,
        );
        let e_pred = mini_spice::simulate_energy(
            &d.design.netlist,
            &caps_pred,
            0.9,
            scale.energy_vectors,
            seed,
        );
        let norm_pred = if e_gt.energy > 0.0 {
            e_pred.energy / e_gt.energy
        } else {
            0.0
        };
        gts.push(1.0);
        preds.push(norm_pred);
        rows.push(vec![
            d.kind.paper_name().to_string(),
            "1.000".to_string(),
            format!("{:.3}", norm_pred),
            format!("{}", e_gt.total_toggles),
        ]);
    }
    let mape = circuitgps::mape(&preds, &gts);
    format!(
        "### Fig. 4: Simulated Energy, Ground Truth vs CircuitGPS Prediction\n\n{}\nMean absolute percentage error across test cases: **{:.1}%**\n",
        markdown_table(&["Design", "Norm. Energy (GT)", "Norm. Energy (Pred)", "Toggles"], &rows),
        mape
    )
}
