//! Tables V/VI/VIII driver: end-to-end per-link inference latency
//! (sample → PE → model forward), the number that governs how fast a
//! trained CircuitGPS screens coupling candidates on a new design.

use ams_datagen::{DesignKind, SizePreset};
use cirgps_bench::{default_model, DesignData};
use circuitgps::{prepare_link_dataset, CircuitGps, PreparedSample};
use criterion::{criterion_group, criterion_main, Criterion};
use graph_pe::{compute_pe, PeKind};
use subgraph_sample::{CapNormalizer, DatasetConfig, SamplerConfig, SubgraphSampler, XcNormalizer};

fn bench_pipeline(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig { max_per_type: 30, ..Default::default() });
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |v| cap.encode(v));
    let model = CircuitGps::new(default_model(PeKind::Dspd, 7));

    let mut group = c.benchmark_group("table5_inference");
    group.bench_function("predict_link_per_sample", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            std::hint::black_box(model.predict_link(s))
        })
    });
    group.bench_function("predict_reg_per_sample", |b| {
        let mut i = 0;
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            std::hint::black_box(model.predict_reg(s))
        })
    });
    group.bench_function("sample_pe_predict_end_to_end", |b| {
        let pairs: Vec<(u32, u32)> =
            ds.samples.iter().map(|s| (s.link.a, s.link.b)).take(16).collect();
        let mut sampler = SubgraphSampler::new(&d.graph, SamplerConfig { hops: 1, max_nodes: 2048 });
        let mut i = 0;
        b.iter(|| {
            let (a, bb) = pairs[i % pairs.len()];
            i += 1;
            let sub = sampler.enclosing_subgraph(a, bb);
            let _pe = compute_pe(&sub, PeKind::Dspd);
            let prepared = PreparedSample::new(sub, PeKind::Dspd, &xcn, 1.0, 0.0);
            std::hint::black_box(model.predict_link(&prepared))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
