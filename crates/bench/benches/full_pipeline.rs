//! Tables V/VI/VIII driver: end-to-end per-link inference latency. The
//! measurement body lives in `cirgps_bench::perf` so `bench_json` can
//! snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::full_pipeline_suite);
criterion_main!(benches);
