//! Table IV driver: enclosing-subgraph sampling throughput. The
//! measurement body lives in `cirgps_bench::perf` so `bench_json` can
//! snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::sampling_suite);
criterion_main!(benches);
