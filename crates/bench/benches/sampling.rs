//! Table IV driver: enclosing-subgraph sampling throughput (the paper's
//! sampling step is the dataset-construction bottleneck at scale).

use ams_datagen::{DesignKind, SizePreset};
use cirgps_bench::DesignData;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use subgraph_sample::{SamplerConfig, SubgraphSampler};

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table4_subgraph_sampling");
    for kind in [DesignKind::TimingControl, DesignKind::Array128x32] {
        let d = DesignData::load(kind, SizePreset::Tiny, 7);
        // Pick pin/net pairs spread over the graph.
        let n = d.graph.num_nodes() as u32;
        let pairs: Vec<(u32, u32)> =
            (0..64).map(|i| ((i * 37) % n, (i * 61 + 13) % n)).filter(|(a, b)| a != b).collect();
        group.bench_with_input(
            BenchmarkId::new("one_hop_pairs", kind.paper_name()),
            &d,
            |b, d| {
                let mut sampler =
                    SubgraphSampler::new(&d.graph, SamplerConfig { hops: 1, max_nodes: 2048 });
                b.iter(|| {
                    for &(x, y) in &pairs {
                        std::hint::black_box(sampler.enclosing_subgraph(x, y));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("two_hop_nodes", kind.paper_name()),
            &d,
            |b, d| {
                let mut sampler =
                    SubgraphSampler::new(&d.graph, SamplerConfig { hops: 2, max_nodes: 2048 });
                b.iter(|| {
                    for &(x, _) in &pairs {
                        std::hint::black_box(sampler.node_subgraph(x));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
