//! Serving-daemon throughput: the `cirgps-serve` dynamic micro-batcher
//! driven in-process with real scheduler workers. The measurement body
//! lives in `cirgps_bench::perf` so `bench_json` can snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::serve_throughput_suite);
criterion_main!(benches);
