//! Full-chip sweep planner throughput: amortized per-pair cost of the
//! shared-subgraph batch executor over enumerated candidate pairs. The
//! measurement body lives in `cirgps_bench::perf` so `bench_json` can
//! snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::sweep_throughput_suite);
criterion_main!(benches);
