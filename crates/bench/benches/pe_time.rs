//! Table II "Time/G" column: per-subgraph positional-encoding cost for
//! every PE variant, measured on real sampled subgraphs.

use ams_datagen::{DesignKind, SizePreset};
use cirgps_bench::DesignData;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_pe::{compute_pe, PeKind};
use subgraph_sample::DatasetConfig;

fn bench_pe(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::DigitalClkGen, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig {
        max_per_type: 40,
        ..Default::default()
    });
    let subs: Vec<_> = ds
        .samples
        .iter()
        .map(|s| s.subgraph.clone())
        .take(32)
        .collect();
    assert!(!subs.is_empty());

    let mut group = c.benchmark_group("table2_pe_time_per_graph");
    for pe in PeKind::TABLE2 {
        group.bench_with_input(
            BenchmarkId::from_parameter(pe.paper_name()),
            &pe,
            |b, &pe| {
                b.iter(|| {
                    for s in &subs {
                        std::hint::black_box(compute_pe(s, pe));
                    }
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pe);
criterion_main!(benches);
