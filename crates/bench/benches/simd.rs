//! Per-backend SIMD microkernels and int8 quantized inference. The
//! measurement bodies live in `cirgps_bench::perf` so `bench_json` can
//! snapshot them too.

use criterion::{criterion_group, criterion_main};

criterion_group!(
    benches,
    cirgps_bench::perf::simd_kernels_suite,
    cirgps_bench::perf::quantized_infer_suite
);
criterion_main!(benches);
