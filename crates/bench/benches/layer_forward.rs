//! Tables III/VII "Time" column driver: forward+backward cost of one
//! training step for each GPS-layer configuration. The measurement body
//! lives in `cirgps_bench::perf` so `bench_json` can snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::layer_forward_suite);
criterion_main!(benches);
