//! Tables III/VII "Time" column driver: forward+backward cost of one
//! training step for each GPS-layer configuration.

use ams_datagen::{DesignKind, SizePreset};
use cirgps_bench::{default_model, layer_ablation_configs, DesignData};
use cirgps_nn::{GradStore, Tape};
use circuitgps::{prepare_link_dataset, CircuitGps, ModelConfig, PreparedSample};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graph_pe::PeKind;
use subgraph_sample::{CapNormalizer, DatasetConfig, XcNormalizer};

fn bench_layers(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::DigitalClkGen, SizePreset::Tiny, 7);
    let ds = d.link_dataset(&DatasetConfig { max_per_type: 30, ..Default::default() });
    let xcn = XcNormalizer::fit(&[&d.graph]);
    let cap = CapNormalizer::paper_range();
    let samples = prepare_link_dataset(&ds, PeKind::Dspd, &xcn, |v| cap.encode(v));
    let batch: Vec<&PreparedSample> = samples.iter().take(8).collect();

    let mut group = c.benchmark_group("table3_layer_step");
    group.sample_size(10);
    for (mpnn_name, attn_name, mpnn, attn) in layer_ablation_configs() {
        let cfg = ModelConfig { mpnn, attn, ..default_model(PeKind::Dspd, 7) };
        let model = CircuitGps::new(cfg);
        let label = format!("{mpnn_name}+{attn_name}");
        group.bench_with_input(BenchmarkId::from_parameter(label), &model, |b, model| {
            b.iter(|| {
                let mut tape = Tape::new(model.store(), true, 0);
                let loss = model.loss_link_batch(&mut tape, &batch);
                let mut grads = GradStore::new(model.store());
                tape.backward(loss, &mut grads);
                std::hint::black_box(grads);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_layers);
criterion_main!(benches);
