//! Fig. 4 driver: switch-level simulation throughput (settle iterations
//! and full energy runs on a test design).

use ams_datagen::{DesignKind, SizePreset};
use cirgps_bench::DesignData;
use criterion::{criterion_group, criterion_main, Criterion};
use mini_spice::{net_capacitances, simulate_energy, SwitchSim};

fn bench_energy(c: &mut Criterion) {
    let d = DesignData::load(DesignKind::TimingControl, SizePreset::Tiny, 7);
    let caps = net_capacitances(&d.design.netlist, &d.spf);

    let mut group = c.benchmark_group("fig4_energy_sim");
    group.sample_size(10);
    group.bench_function("settle_once", |b| {
        let mut sim = SwitchSim::new(&d.design.netlist);
        b.iter(|| std::hint::black_box(sim.settle()))
    });
    group.bench_function("energy_16_vectors", |b| {
        b.iter(|| std::hint::black_box(simulate_energy(&d.design.netlist, &caps, 0.9, 16, 3)))
    });
    group.finish();
}

criterion_group!(benches, bench_energy);
criterion_main!(benches);
