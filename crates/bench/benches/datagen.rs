//! Grammar-enumerator throughput: pure enumeration plus build+extract
//! cost at three design-size tiers. The measurement body lives in
//! `cirgps_bench::perf` so `bench_json` can snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::datagen_enumerate_suite);
criterion_main!(benches);
