//! Attention-only microbench: fused block-diagonal attention ops
//! (forward+backward) isolated from the rest of the GPS layer. The
//! measurement body lives in `cirgps_bench::perf` so `bench_json` can
//! snapshot it too.

use criterion::{criterion_group, criterion_main};

criterion_group!(benches, cirgps_bench::perf::attention_suite);
criterion_main!(benches);
